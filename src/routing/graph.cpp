#include "routing/graph.hpp"

#include <stdexcept>
#include <string>

namespace qlink::routing {

Graph::Graph(std::size_t num_nodes)
    : num_nodes_(num_nodes), adjacency_(num_nodes) {
  if (num_nodes < 2) {
    throw std::invalid_argument("Graph: at least two nodes");
  }
}

std::size_t Graph::add_edge(std::uint32_t a, std::uint32_t b,
                            const EdgeParams& params) {
  if (a >= num_nodes_ || b >= num_nodes_) {
    throw std::invalid_argument(
        "Graph::add_edge: unknown node id " + std::to_string(a >= num_nodes_ ? a : b) +
        " (graph has " + std::to_string(num_nodes_) + " nodes)");
  }
  if (a == b) {
    throw std::invalid_argument("Graph::add_edge: self-loop at node " +
                                std::to_string(a));
  }
  if (find_edge(a, b) != npos) {
    throw std::invalid_argument(
        "Graph::add_edge: duplicate edge " + std::to_string(a) + "-" +
        std::to_string(b) +
        " (model parallel links with EdgeParams::capacity)");
  }
  if (params.capacity == 0) {
    throw std::invalid_argument("Graph::add_edge: zero capacity");
  }
  const std::size_t id = edges_.size();
  edges_.push_back(Edge{a, b, params});
  adjacency_[a].push_back(Adjacency{id, b});
  adjacency_[b].push_back(Adjacency{id, a});
  return id;
}

std::size_t Graph::find_edge(std::uint32_t a, std::uint32_t b) const {
  if (a >= num_nodes_ || b >= num_nodes_) return npos;
  for (const Adjacency& adj : adjacency_[a]) {
    if (adj.peer == b) return adj.edge;
  }
  return npos;
}

std::uint32_t Graph::other_end(std::size_t edge, std::uint32_t node) const {
  const Edge& e = edges_.at(edge);
  if (node == e.a) return e.b;
  if (node == e.b) return e.a;
  throw std::invalid_argument("Graph::other_end: node not on edge");
}

bool Graph::connected() const {
  std::vector<bool> seen(num_nodes_, false);
  std::vector<std::uint32_t> stack{0};
  seen[0] = true;
  std::size_t count = 1;
  while (!stack.empty()) {
    const std::uint32_t u = stack.back();
    stack.pop_back();
    for (const Adjacency& adj : adjacency_[u]) {
      if (!seen[adj.peer]) {
        seen[adj.peer] = true;
        ++count;
        stack.push_back(adj.peer);
      }
    }
  }
  return count == num_nodes_;
}

Graph Graph::induced(std::span<const std::uint32_t> nodes) const {
  if (nodes.size() < 2) {
    throw std::invalid_argument("Graph::induced: at least two nodes");
  }
  constexpr std::uint32_t kAbsent = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> local_of(num_nodes_, kAbsent);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const std::uint32_t g = nodes[i];
    if (g >= num_nodes_) {
      throw std::invalid_argument("Graph::induced: unknown node id " +
                                  std::to_string(g));
    }
    if (local_of[g] != kAbsent) {
      throw std::invalid_argument("Graph::induced: duplicate node id " +
                                  std::to_string(g));
    }
    local_of[g] = static_cast<std::uint32_t>(i);
  }
  Graph sub(nodes.size());
  for (const Edge& e : edges_) {
    const std::uint32_t la = local_of[e.a];
    const std::uint32_t lb = local_of[e.b];
    if (la == kAbsent || lb == kAbsent) continue;
    sub.add_edge(la, lb, e.params);
  }
  return sub;
}

Graph Graph::chain(std::size_t num_nodes, const EdgeParams& params) {
  Graph g(num_nodes);
  for (std::size_t i = 0; i + 1 < num_nodes; ++i) {
    g.add_edge(static_cast<std::uint32_t>(i),
               static_cast<std::uint32_t>(i + 1), params);
  }
  return g;
}

Graph Graph::ring(std::size_t num_nodes, const EdgeParams& params) {
  if (num_nodes < 3) {
    throw std::invalid_argument("Graph::ring: at least three nodes");
  }
  Graph g = chain(num_nodes, params);
  g.add_edge(static_cast<std::uint32_t>(num_nodes - 1), 0, params);
  return g;
}

Graph Graph::star(std::size_t num_leaves, const EdgeParams& params) {
  Graph g(num_leaves + 1);
  for (std::size_t i = 1; i <= num_leaves; ++i) {
    g.add_edge(static_cast<std::uint32_t>(i), 0, params);
  }
  return g;
}

Graph Graph::grid(std::size_t rows, std::size_t cols,
                  const EdgeParams& params) {
  if (rows == 0 || cols == 0 || rows * cols < 2) {
    throw std::invalid_argument("Graph::grid: at least two nodes");
  }
  Graph g(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<std::uint32_t>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), params);
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), params);
    }
  }
  return g;
}

Graph Graph::torus(std::size_t rows, std::size_t cols,
                   const EdgeParams& params) {
  Graph g = grid(rows, cols, params);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<std::uint32_t>(r * cols + c);
  };
  if (cols >= 3) {
    for (std::size_t r = 0; r < rows; ++r) {
      g.add_edge(id(r, cols - 1), id(r, 0), params);
    }
  }
  if (rows >= 3) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.add_edge(id(rows - 1, c), id(0, c), params);
    }
  }
  return g;
}

Graph Graph::dragonfly(std::size_t groups, std::size_t routers_per_group,
                       const EdgeParams& params) {
  if (groups == 0 || routers_per_group == 0 ||
      groups * routers_per_group < 2) {
    throw std::invalid_argument("Graph::dragonfly: at least two routers");
  }
  Graph g(groups * routers_per_group);
  const auto id = [routers_per_group](std::size_t group, std::size_t router) {
    return static_cast<std::uint32_t>(group * routers_per_group + router);
  };
  // All-to-all inside each group.
  for (std::size_t grp = 0; grp < groups; ++grp) {
    for (std::size_t i = 0; i < routers_per_group; ++i) {
      for (std::size_t j = i + 1; j < routers_per_group; ++j) {
        g.add_edge(id(grp, i), id(grp, j), params);
      }
    }
  }
  // One global link per group pair, spread round-robin over each
  // group's routers so global traffic does not funnel through one
  // router (the standard dragonfly layout, cf. "The Swapped Dragonfly").
  std::vector<std::size_t> next_port(groups, 0);
  for (std::size_t i = 0; i < groups; ++i) {
    for (std::size_t j = i + 1; j < groups; ++j) {
      const std::size_t ri = next_port[i]++ % routers_per_group;
      const std::size_t rj = next_port[j]++ % routers_per_group;
      g.add_edge(id(i, ri), id(j, rj), params);
    }
  }
  return g;
}

}  // namespace qlink::routing
