#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "metrics/collector.hpp"
#include "netlayer/plane.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "obs/trace.hpp"
#include "routing/graph.hpp"
#include "routing/path_selector.hpp"
#include "routing/reservation.hpp"
#include "sim/simulator.hpp"

/// \file router.hpp
/// The glue that turns graph + path selection + reservations into a
/// running network: a Router owns the Graph's annotated view of a
/// netlayer::EntanglementPlane (edge i == link i, verified on
/// construction) and admits end-to-end requests onto reserved routed
/// paths of that plane — the full-detail SwapService or the flow-level
/// FlowPlane, interchangeably.
///
/// Admission: the k cheapest candidate paths under the configured cost
/// model are tried in order; the first whose edges all have spare
/// reservation capacity *now* is leased (see ReservationTable — a lease
/// window sized by lease_slack, or an unbounded pin) and handed to the
/// SwapService (with per-hop CREATE floors from EdgeParams::link_floor).
/// A request that fits no candidate queues FIFO in the ReservationTable
/// and is retried whenever any reservation releases or any lease
/// lapses. Reservations release when the request delivers its last pair
/// or fails terminally.
///
/// Adaptive re-routing (max_reroutes > 0): when an admitted request
/// fails, the failing edge joins the request's exclusion set, the
/// surviving candidates (the Yen list minus excluded edges) are retried
/// in order — recomputed over the exclusion set once they run dry — and
/// the request is resubmitted, up to the budget. The error handler sees
/// terminal failures only; absorbed hop failures surface in
/// Stats::rerouted and metrics::Collector::reroutes. Exclusions decay:
/// with exclusion_ttl > 0 an excluded edge ages out after the TTL, and
/// independently of the TTL an edge whose annotated fidelity recovered
/// (refresh_annotations measured a gain >= recovery_min_gain since the
/// exclusion) is dropped at the next re-route, so a repaired link is
/// routable again within the request's budget.
///
/// Deferred admission (defer_admission): a request that fits no
/// candidate *now* books the earliest future window in which one
/// candidate's edges are all free (ReservationTable::earliest_window /
/// reserve_at) and the Router schedules its submission at that start —
/// instead of parking the request blind in the blocked queue. Requests
/// that cannot book a finite window (an edge pinned forever) still
/// queue. batch_admission switches the blocked-queue drain to the
/// per-edge-FIFO batch policy (see reservation.hpp).

namespace qlink::routing {

/// netlayer edge-list config for a graph: link i joins edge i's nodes.
/// The caller still picks the per-link template / seed / configure_link
/// hook on the returned config.
netlayer::NetworkConfig make_network_config(
    const Graph& graph, const core::LinkConfig& link_template,
    std::uint64_t seed);

struct RouterConfig {
  CostModel cost = CostModel::kHopCount;
  /// Candidate paths per request (k of k-shortest).
  std::size_t k_candidates = 4;
  /// Queue requests that fit no candidate (retried on release or lease
  /// expiry); false rejects them immediately instead.
  bool queue_blocked = true;
  /// Re-routing budget per request: after a hop failure the failing
  /// edge is excluded and the request resubmitted over a sibling
  /// candidate, at most this many times. 0 = static routing (every
  /// failure is terminal — the historical behavior). Pinned submit_on
  /// requests never re-route.
  std::size_t max_reroutes = 0;
  /// Time-sliced reservations: each admission leases its edges for
  /// lease_slack x num_pairs x (slowest hop's expected pair time)
  /// instead of pinning them for the whole request lifetime, so a
  /// blocked request sharing an edge at a disjoint time admits on lease
  /// expiry without waiting for the holder's release. <= 0 = unbounded
  /// leases (whole-request pinning, the historical behavior).
  double lease_slack = 0.0;
  /// Book a future lease window for requests that fit nothing now and
  /// schedule their submission at the window start (see file comment).
  /// false = queue blind (the PR-4 behavior).
  bool defer_admission = false;
  /// Per-edge-FIFO batch drain of the blocked queue: a younger blocked
  /// request never jumps an older one on a shared edge, while requests
  /// with disjoint footprints admit in the same wakeup. false = the
  /// historical greedy drain (jumps allowed, counted as steals).
  bool batch_admission = false;
  /// Re-routing exclusions age out after this long (sim time); 0 =
  /// excluded forever (the PR-4 behavior).
  sim::SimTime exclusion_ttl = 0;
  /// An excluded edge whose annotated fidelity rises by at least this
  /// much across refresh_annotations calls counts as recovered and is
  /// dropped from exclusion sets at the next re-route.
  double recovery_min_gain = 0.05;
  /// Cache Yen candidate lists per (src, dst), invalidated whenever
  /// annotate_from_network / refresh_annotations rewrites the edge
  /// parameters. The selector is deterministic, so a cache hit returns
  /// byte-identical candidates — this cannot change a trajectory, only
  /// skip recomputation. Off by default: callers that mutate
  /// graph().params() directly between submissions (tests do) would
  /// otherwise route on stale costs. Streaming workloads over big
  /// topologies (bench_workload_scale) switch it on.
  bool cache_paths = false;
};

/// How Router::refresh_annotations folds live FEU test-round estimates
/// into the graph's planning parameters.
struct RefreshOptions {
  /// Descending CREATE-floor quality set-points (as
  /// annotate_from_network).
  std::span<const double> floor_menu;
  /// Minimum recorded test rounds before a link's measurements are
  /// trusted at all.
  std::size_t min_rounds = 30;
  /// Staleness half-life: with no new test rounds for one half-life,
  /// the measured estimate's weight halves toward the static model.
  double stale_halflife_s = 0.5;
};

class Router {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    /// Admissions (a re-routed request is admitted again; resubmissions
    /// do not count toward `submitted`).
    std::uint64_t admitted = 0;
    /// Requests that queued behind reservations at initial submission
    /// (a re-routed request re-queueing is not counted again).
    std::uint64_t blocked = 0;
    /// Deferred-admission bookings: submissions (initial or re-route)
    /// that fit nothing now and booked a future lease window instead of
    /// queueing blind.
    std::uint64_t deferred = 0;
    /// Total booked wait (sim time) across `deferred`: the gap between
    /// the deferral and the booked window start.
    sim::SimTime deferred_wait_total = 0;
    /// Requests dropped because queueing is disabled.
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    /// Terminal failures (with re-routing enabled, failures that could
    /// not be absorbed).
    std::uint64_t failed = 0;
    /// Hop failures absorbed by resubmitting over a sibling path,
    /// counted when the resubmission is (re-)admitted — equal to
    /// metrics::Collector::reroutes when the SwapService shares the
    /// Router's collector (reroutes is recorded by the SwapService's).
    std::uint64_t rerouted = 0;
    /// Re-routable requests that still failed: budget or sibling
    /// candidates exhausted.
    std::uint64_t abandoned = 0;
    std::uint64_t pairs_delivered = 0;
  };

  /// Takes over the plane's deliver/error handlers (route the higher
  /// layer's handlers through the Router instead). Throws
  /// std::invalid_argument when graph and plane disagree (edge/link
  /// count, node count, or any edge's endpoints).
  Router(Graph graph, netlayer::EntanglementPlane& plane,
         const RouterConfig& config = {},
         metrics::Collector* collector = nullptr);

  /// Deprecated shim (pre-plane API): the SwapService *is* the
  /// full-detail plane; `network` must be the one it was built over.
  Router(Graph graph, netlayer::QuantumNetwork& network,
         netlayer::SwapService& swap, const RouterConfig& config = {},
         metrics::Collector* collector = nullptr);
  ~Router();

  // selector_ references graph_ (a copy's selector would keep reading
  // the source Router's graph), and the SwapService handlers capture
  // `this`.
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Fill every edge's planning parameters from its link's FEU: the
  /// edge is operated at the first feasible floor of `floor_menu`
  /// (descending quality set-points, e.g. {0.85, 0.775, 0.7, 0.625});
  /// fidelity/pair-time estimates and the classical delay follow from
  /// that choice. Edges feasible at no menu entry keep link_floor 0 and
  /// advertise fidelity 0.25 (no entanglement — the fidelity cost model
  /// then avoids them whenever an alternative exists).
  void annotate_from_network(std::span<const double> floor_menu);

  /// annotate_from_network, then blend each edge's fidelity toward the
  /// link's *measured* test-round estimate (core::Link::
  /// test_round_estimate): weight 2^(-age / half-life), where age is
  /// the time since the link last recorded a new test round. Fresh
  /// measurements dominate the static model; stale ones decay back to
  /// it. Links below min_rounds stay on the model.
  void refresh_annotations(const RefreshOptions& options);

  /// Submit an end-to-end request. Returns the SwapService request id
  /// when admitted immediately, 0 when queued (or rejected — see
  /// Stats). Throws std::invalid_argument when the graph offers no
  /// src -> dst path at all.
  std::uint32_t submit(const netlayer::E2eRequest& request);

  /// Submit pinned to one explicit path (no candidate search, no
  /// re-routing): reserved and admitted, or queued for that same path.
  /// The path must join the request's endpoints.
  std::uint32_t submit_on(const netlayer::E2eRequest& request,
                          const Path& path);

  /// Attach a lifecycle tracer (null to detach). The Router stamps
  /// E2eRequest::trace_id at submission (kept across re-routing
  /// resubmissions) and emits the request-lane spans: the request
  /// envelope, its admission wait, its deferral windows, and
  /// submit / reroute / abandon / failure instants. Recording only —
  /// attaching a tracer cannot perturb the trajectory. Attach the same
  /// tracer to the SwapService for the per-hop spans.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach a per-edge accounting substrate (null to detach): the
  /// Router forwards it to its ReservationTable (lease windows, blocked
  /// footprints) and SwapService (attempts, swaps, deliveries), and
  /// reports admission waits and request-level blocks itself. Recording
  /// only — attaching cannot perturb the trajectory.
  void set_edge_stats(metrics::EdgeStats* stats) noexcept;

  void set_deliver_handler(netlayer::SwapService::DeliverFn fn) {
    on_deliver_ = std::move(fn);
  }
  /// Sees terminal failures only: a hop failure absorbed by re-routing
  /// is not reported here (see Stats::rerouted).
  void set_error_handler(netlayer::SwapService::ErrorFn fn) {
    on_error_ = std::move(fn);
  }

  /// Mutable for cost-model parameters (fidelity/pair-time/floors; also
  /// what annotate_from_network writes). Edge *capacities* were
  /// snapshotted into the ReservationTable at construction — capacity
  /// edits here do not change admission.
  Graph& graph() noexcept { return graph_; }
  const Graph& graph() const noexcept { return graph_; }
  const PathSelector& selector() const noexcept { return selector_; }
  const ReservationTable& reservations() const noexcept {
    return reservations_;
  }
  const Stats& stats() const noexcept { return stats_; }
  /// Deferred bookings whose window start has not arrived yet.
  std::size_t deferred_pending() const noexcept {
    return deferred_events_.size();
  }
  /// When refresh_annotations last saw this edge's fidelity recover by
  /// >= recovery_min_gain (0 = never). Exclusions older than this are
  /// dropped at the next re-route.
  sim::SimTime edge_recovered_at(std::size_t edge) const {
    return edge < recovered_at_.size() ? recovered_at_[edge] : 0;
  }
  /// The entanglement plane this router admits onto.
  netlayer::EntanglementPlane& plane() noexcept { return plane_; }
  /// The engine shard the router schedules on — resolved through the
  /// plane's handle at construction, so a router bound to an island of
  /// a sharded run stays wholly on that island's shard.
  sim::EngineRef engine_ref() const noexcept { return engine_ref_; }
  /// The full-detail network behind the plane, or nullptr on a plane
  /// without one (the flow-level fast path).
  netlayer::QuantumNetwork* network() noexcept { return plane_.network(); }

  /// A selector path as SwapService hops / per-hop CREATE floors.
  std::vector<netlayer::Hop> to_hops(const Path& path) const;
  std::vector<double> hop_floors(const Path& path) const;

  /// Lease window for admitting `request` on `path` (kNoExpiry when
  /// lease_slack <= 0): the estimated occupancy from the annotated
  /// per-hop pair times, times the slack.
  sim::SimTime lease_duration(const Path& path,
                              const netlayer::E2eRequest& request) const;

 private:
  /// A re-routing exclusion: the edge to avoid and when it failed (so
  /// exclusion_ttl / recovery can age it out).
  struct Exclusion {
    std::size_t edge = 0;
    sim::SimTime at = 0;
  };

  /// Everything needed to re-route an in-flight request: its remaining
  /// work, the surviving candidates, and the edges it must now avoid.
  struct FlightState {
    ReservationTable::Ticket ticket = 0;
    netlayer::E2eRequest request;
    std::vector<Path> candidates;
    std::vector<Exclusion> excluded;
    std::size_t reroutes_used = 0;
    std::uint16_t delivered = 0;
    /// false for pinned submit_on requests: re-routing would betray
    /// the pin.
    bool reroutable = true;
    /// Wait booked by a deferred admission (seconds between the
    /// deferral and the booked window start), attributed to the
    /// request's deferral phase once its SwapService id exists.
    double booked_wait_s = 0.0;
  };

  /// Yen candidates for submit(): served from the (src, dst) cache when
  /// cache_paths is on and the annotations have not changed since the
  /// entry was computed.
  std::vector<Path> candidates_for(std::uint32_t src, std::uint32_t dst);
  std::uint32_t submit_flight(FlightState flight);
  /// Reserve + hand to the SwapService over the first fitting
  /// candidate; returns the SwapService request id, 0 when nothing
  /// fits. On success `flight` has been moved into in_flight_.
  std::uint32_t try_admit(FlightState& flight);
  /// Deferred admission: book the candidate with the earliest feasible
  /// future window and schedule the submission at its start. False when
  /// deferral is off or no candidate has a finite window.
  bool try_defer(FlightState& flight);
  /// Hand a booked flight to the SwapService at its window start (the
  /// deferred analogue of try_admit's success path).
  void submit_deferred(FlightState flight, const Path& path);
  /// Queue `flight` in the reservation table's blocked queue with its
  /// preferred candidate's edges as the drain footprint.
  void enqueue_flight(FlightState flight);
  /// Drop exclusions that aged past exclusion_ttl or whose edge
  /// recovered (refresh_annotations) since the exclusion was recorded.
  void prune_exclusions(FlightState& flight, sim::SimTime now) const;
  /// Forward the reservation table's contention counters (steals /
  /// per-edge-FIFO holds) to the collector as they grow.
  void sync_contention_metrics();
  /// Close the request's trace lane with its envelope span
  /// (submitted_at -> now, outcome in the args).
  void trace_terminal(const FlightState& flight, const char* outcome);
  void queue_or_drop_reroute(FlightState flight,
                             const netlayer::E2eErr& err);
  void on_deliver(const netlayer::E2eOk& ok);
  void on_error(const netlayer::E2eErr& err);
  /// Keep a wakeup scheduled at the reservation table's next lease
  /// expiry while anything is blocked, so expiry retries fire without
  /// a release.
  void schedule_expiry_wakeup();

  Graph graph_;
  netlayer::EntanglementPlane& plane_;
  sim::EngineRef engine_ref_;
  sim::Simulator& sim_;
  RouterConfig config_;
  metrics::Collector* collector_;
  obs::Tracer* tracer_ = nullptr;
  metrics::EdgeStats* edge_stats_ = nullptr;
  PathSelector selector_;
  ReservationTable reservations_;
  /// (src, dst) -> Yen candidates (cache_paths only). Cleared whenever
  /// annotate_from_network / refresh_annotations rewrites edge costs.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<Path>>
      path_cache_;
  /// SwapService request id -> its flight (reservation + reroute
  /// state).
  std::map<std::uint32_t, FlightState> in_flight_;
  /// Per-edge measurement freshness for refresh_annotations: the test
  /// round count last seen, and when it last grew.
  struct EdgeFreshness {
    std::size_t rounds_seen = 0;
    sim::SimTime last_fresh = 0;
  };
  std::vector<EdgeFreshness> freshness_;
  /// Per-edge recovery stamps (see edge_recovered_at) and the blended
  /// fidelity each edge had after the previous refresh, so a recovery
  /// is a measured *gain*, not an absolute level.
  std::vector<sim::SimTime> recovered_at_;
  std::vector<double> prev_refresh_fidelity_;
  /// Pending deferred-submission events (cancelled on destruction —
  /// their closures capture `this`).
  std::set<sim::EventId> deferred_events_;
  /// Table counters already forwarded to the collector.
  std::uint64_t steals_seen_ = 0;
  std::uint64_t hol_holds_seen_ = 0;
  std::optional<sim::EventId> expiry_event_;
  sim::SimTime expiry_at_ = 0;
  netlayer::SwapService::DeliverFn on_deliver_;
  netlayer::SwapService::ErrorFn on_error_;
  Stats stats_;
};

}  // namespace qlink::routing
