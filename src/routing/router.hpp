#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "metrics/collector.hpp"
#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "routing/graph.hpp"
#include "routing/path_selector.hpp"
#include "routing/reservation.hpp"

/// \file router.hpp
/// The glue that turns graph + path selection + reservations into a
/// running network: a Router owns the Graph's annotated view of a
/// netlayer::QuantumNetwork (edge i == link i, verified on
/// construction) and admits end-to-end requests onto reserved routed
/// paths of its SwapService.
///
/// Admission: the k cheapest candidate paths under the configured cost
/// model are tried in order; the first whose edges all have spare
/// reservation capacity is reserved and handed to the SwapService
/// (with per-hop CREATE floors from EdgeParams::link_floor). A request
/// that fits no candidate queues FIFO in the ReservationTable and is
/// retried whenever any reservation releases. Reservations release when
/// the request delivers its last pair or fails.

namespace qlink::routing {

/// netlayer edge-list config for a graph: link i joins edge i's nodes.
/// The caller still picks the per-link template / seed / configure_link
/// hook on the returned config.
netlayer::NetworkConfig make_network_config(
    const Graph& graph, const core::LinkConfig& link_template,
    std::uint64_t seed);

struct RouterConfig {
  CostModel cost = CostModel::kHopCount;
  /// Candidate paths per request (k of k-shortest).
  std::size_t k_candidates = 4;
  /// Queue requests that fit no candidate (retried on every release);
  /// false rejects them immediately instead.
  bool queue_blocked = true;
};

class Router {
 public:
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    /// Requests that went through the blocked queue at least once.
    std::uint64_t blocked = 0;
    /// Requests dropped because queueing is disabled.
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t pairs_delivered = 0;
  };

  /// Takes over the SwapService's deliver/error handlers (route the
  /// higher layer's handlers through the Router instead). Throws
  /// std::invalid_argument when graph and network disagree (edge/link
  /// count, node count, or any edge's endpoints).
  Router(Graph graph, netlayer::QuantumNetwork& network,
         netlayer::SwapService& swap, const RouterConfig& config = {},
         metrics::Collector* collector = nullptr);

  // selector_ references graph_ (a copy's selector would keep reading
  // the source Router's graph), and the SwapService handlers capture
  // `this`.
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Fill every edge's planning parameters from its link's FEU: the
  /// edge is operated at the first feasible floor of `floor_menu`
  /// (descending quality set-points, e.g. {0.85, 0.775, 0.7, 0.625});
  /// fidelity/pair-time estimates and the classical delay follow from
  /// that choice. Edges feasible at no menu entry keep link_floor 0 and
  /// advertise fidelity 0.25 (no entanglement — the fidelity cost model
  /// then avoids them whenever an alternative exists).
  void annotate_from_network(std::span<const double> floor_menu);

  /// Submit an end-to-end request. Returns the SwapService request id
  /// when admitted immediately, 0 when queued (or rejected — see
  /// Stats). Throws std::invalid_argument when the graph offers no
  /// src -> dst path at all.
  std::uint32_t submit(const netlayer::E2eRequest& request);

  /// Submit pinned to one explicit path (no candidate search): reserved
  /// and admitted, or queued for that same path. The path must join the
  /// request's endpoints.
  std::uint32_t submit_on(const netlayer::E2eRequest& request,
                          const Path& path);

  void set_deliver_handler(netlayer::SwapService::DeliverFn fn) {
    on_deliver_ = std::move(fn);
  }
  void set_error_handler(netlayer::SwapService::ErrorFn fn) {
    on_error_ = std::move(fn);
  }

  /// Mutable for cost-model parameters (fidelity/pair-time/floors; also
  /// what annotate_from_network writes). Edge *capacities* were
  /// snapshotted into the ReservationTable at construction — capacity
  /// edits here do not change admission.
  Graph& graph() noexcept { return graph_; }
  const Graph& graph() const noexcept { return graph_; }
  const PathSelector& selector() const noexcept { return selector_; }
  const ReservationTable& reservations() const noexcept {
    return reservations_;
  }
  const Stats& stats() const noexcept { return stats_; }
  netlayer::QuantumNetwork& network() noexcept { return net_; }
  netlayer::SwapService& swap() noexcept { return swap_; }

  /// A selector path as SwapService hops / per-hop CREATE floors.
  std::vector<netlayer::Hop> to_hops(const Path& path) const;
  std::vector<double> hop_floors(const Path& path) const;

 private:
  std::uint32_t submit_candidates(netlayer::E2eRequest request,
                                  std::vector<Path> candidates);
  bool try_admit(const netlayer::E2eRequest& request,
                 const std::vector<Path>& candidates);
  void on_deliver(const netlayer::E2eOk& ok);
  void on_error(const netlayer::E2eErr& err);

  Graph graph_;
  netlayer::QuantumNetwork& net_;
  netlayer::SwapService& swap_;
  RouterConfig config_;
  metrics::Collector* collector_;
  PathSelector selector_;
  ReservationTable reservations_;
  /// SwapService request id -> its reservation.
  std::map<std::uint32_t, ReservationTable::Ticket> in_flight_;
  std::uint32_t last_admitted_ = 0;
  netlayer::SwapService::DeliverFn on_deliver_;
  netlayer::SwapService::ErrorFn on_error_;
  Stats stats_;
};

}  // namespace qlink::routing
