#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

/// \file graph.hpp
/// The routing layer's network model: an arbitrary undirected multigraph
/// of nodes joined by quantum links, each edge carrying the parameters
/// the path-selection cost models consume (estimated delivered fidelity,
/// expected pair-generation time, classical delay, reservation
/// capacity).
///
/// The graph is pure data — it knows nothing about the simulation. The
/// netlayer builds a QuantumNetwork from it (edge i becomes link i; see
/// routing::make_network_config), and routing::Router keeps the two in
/// lockstep. Generators cover the interconnect shapes the scenario
/// space needs beyond PR 1's chain/star: rings, grids, tori, and
/// dragonflies (cf. "The Swapped Dragonfly", PAPERS.md).

namespace qlink::routing {

/// Per-edge link parameters consumed by cost models and admission.
///
/// `fidelity`, `pair_time_s` and `link_floor` are *estimates the
/// routing layer plans with*; Router::annotate_from_network fills them
/// from each link's FEU so they match what the link layer will actually
/// deliver. Defaults describe a generic good link so that a bare
/// generator-built graph is usable in tests.
struct EdgeParams {
  /// Concurrent end-to-end reservations this edge admits. 1 makes
  /// admitted paths edge-disjoint (one communication qubit per end).
  std::size_t capacity = 1;
  /// Estimated fidelity of pairs the link delivers (to |Psi+>).
  double fidelity = 0.9;
  /// Expected wall time to generate one pair on this edge, seconds.
  double pair_time_s = 1e-3;
  /// One-way classical delay across the edge, seconds (swap-outcome
  /// announcements travel over these).
  double delay_s = 0.0;
  /// Per-link CREATE fidelity floor this edge is operated at; 0 means
  /// "use the request's floor". A degraded link that cannot support the
  /// network-wide floor is operated at the highest floor its hardware
  /// sustains (see Router::annotate_from_network).
  double link_floor = 0.0;
};

class Graph {
 public:
  struct Edge {
    std::uint32_t a = 0;
    std::uint32_t b = 0;
    EdgeParams params;
  };

  /// One entry of a node's adjacency: the incident edge and the node on
  /// its far side.
  struct Adjacency {
    std::size_t edge = 0;
    std::uint32_t peer = 0;
  };

  explicit Graph(std::size_t num_nodes);

  /// Add an undirected edge. Throws std::invalid_argument on self-loops,
  /// out-of-range node ids, or duplicate (a,b) pairs (the quantum links
  /// are physical: one per node pair; model parallel capacity with
  /// EdgeParams::capacity instead).
  std::size_t add_edge(std::uint32_t a, std::uint32_t b,
                       const EdgeParams& params = {});

  std::size_t num_nodes() const noexcept { return num_nodes_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  const Edge& edge(std::size_t i) const { return edges_.at(i); }
  const std::vector<Edge>& edges() const noexcept { return edges_; }
  EdgeParams& params(std::size_t i) { return edges_.at(i).params; }
  const EdgeParams& params(std::size_t i) const {
    return edges_.at(i).params;
  }

  const std::vector<Adjacency>& neighbors(std::uint32_t node) const {
    return adjacency_.at(node);
  }

  /// Edge between a and b (either orientation), or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t find_edge(std::uint32_t a, std::uint32_t b) const;

  std::uint32_t other_end(std::size_t edge, std::uint32_t node) const;

  /// Every node reachable from node 0 (false for an empty graph).
  bool connected() const;

  /// Induced subgraph on `nodes` (distinct global ids, each < num_nodes,
  /// throws std::invalid_argument otherwise): local node i of the result
  /// is global node nodes[i], and every edge with *both* endpoints in
  /// the set is kept with its params (edge order follows this graph's).
  /// This is how a sharded run carves per-island routing graphs out of
  /// one global topology (see sim::ShardAssignment).
  Graph induced(std::span<const std::uint32_t> nodes) const;

  // --- Generators ----------------------------------------------------
  // All generators stamp `params` onto every edge they create.

  /// Nodes 0..n-1 in a line (n-1 edges). n >= 2.
  static Graph chain(std::size_t num_nodes, const EdgeParams& params = {});
  /// Chain plus the closing edge n-1 -> 0. n >= 3.
  static Graph ring(std::size_t num_nodes, const EdgeParams& params = {});
  /// Center node 0, leaves 1..n. n >= 1 leaves.
  static Graph star(std::size_t num_leaves, const EdgeParams& params = {});
  /// rows x cols mesh; node (r, c) has id r * cols + c. rows, cols >= 1,
  /// at least 2 nodes total.
  static Graph grid(std::size_t rows, std::size_t cols,
                    const EdgeParams& params = {});
  /// Grid plus wraparound edges in every dimension of extent >= 3 (a
  /// wrap across extent 2 would duplicate the mesh edge).
  static Graph torus(std::size_t rows, std::size_t cols,
                     const EdgeParams& params = {});
  /// Dragonfly: `groups` groups of `routers_per_group` routers,
  /// all-to-all within each group, and one global link between every
  /// pair of groups, attached round-robin over each group's routers.
  /// Requires groups >= 2 (or a single all-to-all group) and
  /// routers_per_group >= 1.
  static Graph dragonfly(std::size_t groups, std::size_t routers_per_group,
                         const EdgeParams& params = {});

 private:
  std::size_t num_nodes_ = 0;
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace qlink::routing
