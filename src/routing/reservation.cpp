#include "routing/reservation.hpp"

#include <algorithm>
#include <stdexcept>

namespace qlink::routing {

ReservationTable::ReservationTable(const Graph& graph)
    : leases_(graph.num_edges()) {
  capacity_.reserve(graph.num_edges());
  for (std::size_t i = 0; i < graph.num_edges(); ++i) {
    capacity_.push_back(graph.params(i).capacity);
  }
}

bool ReservationTable::can_reserve(std::span<const std::size_t> edges,
                                   sim::SimTime now) const {
  for (const std::size_t e : edges) {
    const std::vector<Lease>& held = leases_.at(e);
    std::size_t live = 0;
    for (const Lease& lease : held) {
      if (lease.end > now) ++live;
    }
    if (live >= capacity_.at(e)) return false;
  }
  return true;
}

std::optional<ReservationTable::Ticket> ReservationTable::try_reserve(
    std::span<const std::size_t> edges, sim::SimTime now,
    sim::SimTime duration) {
  if (edges.empty()) {
    throw std::invalid_argument("ReservationTable: empty path");
  }
  if (duration <= 0) {
    throw std::invalid_argument("ReservationTable: non-positive lease");
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i] >= capacity_.size()) {
      throw std::invalid_argument("ReservationTable: unknown edge id");
    }
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      if (edges[i] == edges[j]) {
        // A repeated edge would count against capacity several times
        // and silently break the edge-disjointness invariant.
        throw std::invalid_argument(
            "ReservationTable: path repeats an edge");
      }
    }
  }
  if (!can_reserve(edges, now)) return std::nullopt;
  const sim::SimTime end =
      duration >= kNoExpiry - now ? kNoExpiry : now + duration;
  const Ticket ticket = next_ticket_++;
  for (const std::size_t e : edges) leases_[e].push_back({ticket, end});
  active_.emplace(ticket, std::vector<std::size_t>(edges.begin(),
                                                   edges.end()));
  max_active_ = std::max(max_active_, active_.size());
  return ticket;
}

void ReservationTable::release(Ticket ticket) {
  const auto it = active_.find(ticket);
  if (it == active_.end()) {
    throw std::invalid_argument("ReservationTable: unknown ticket");
  }
  for (const std::size_t e : it->second) {
    std::vector<Lease>& held = leases_[e];
    // Absent = the lease lapsed earlier (already in lease_expiries_).
    const auto li = std::find_if(
        held.begin(), held.end(),
        [ticket](const Lease& l) { return l.ticket == ticket; });
    if (li != held.end()) held.erase(li);
  }
  active_.erase(it);
  drain_blocked();
}

std::size_t ReservationTable::expire_until(sim::SimTime now) {
  std::size_t lapsed = 0;
  for (std::vector<Lease>& held : leases_) {
    const std::size_t before = held.size();
    std::erase_if(held, [now](const Lease& l) { return l.end <= now; });
    lapsed += before - held.size();
  }
  lease_expiries_ += lapsed;
  if (lapsed > 0) drain_blocked();
  return lapsed;
}

std::optional<sim::SimTime> ReservationTable::next_expiry() const {
  std::optional<sim::SimTime> next;
  for (const std::vector<Lease>& held : leases_) {
    for (const Lease& lease : held) {
      if (lease.end == kNoExpiry) continue;
      if (!next || lease.end < *next) next = lease.end;
    }
  }
  return next;
}

void ReservationTable::enqueue_blocked(RetryFn retry) {
  blocked_.push_back(std::move(retry));
}

void ReservationTable::drain_blocked() {
  // A retry may reserve and a later completion may release (or a lease
  // lapse) reentrantly; instead of recursing, ask the outermost sweep
  // to run one more pass.
  if (draining_) {
    redrain_ = true;
    return;
  }
  draining_ = true;
  do {
    redrain_ = false;
    // Retry a snapshot in queue order and rebuild the queue with the
    // still-blocked ones first: arrival order survives mixed
    // release/expiry wakeups, thrown retries, and mid-sweep enqueues.
    std::deque<RetryFn> round;
    round.swap(blocked_);
    std::deque<RetryFn> still;
    while (!round.empty()) {
      RetryFn retry = std::move(round.front());
      round.pop_front();
      bool left = false;
      try {
        left = retry();
      } catch (...) {
        // Keep the table usable for everyone else: restore the queue
        // (minus the poisoned retry — it would only throw again) in
        // arrival order and clear the drain flag, or every later
        // release() would skip its sweep forever.
        for (RetryFn& r : round) still.push_back(std::move(r));
        for (RetryFn& r : blocked_) still.push_back(std::move(r));
        blocked_ = std::move(still);
        draining_ = false;
        redrain_ = false;
        throw;
      }
      if (!left) still.push_back(std::move(retry));
    }
    for (RetryFn& r : blocked_) still.push_back(std::move(r));
    blocked_ = std::move(still);
  } while (redrain_);
  draining_ = false;
}

}  // namespace qlink::routing
