#include "routing/reservation.hpp"

#include <algorithm>
#include <stdexcept>

#include "metrics/edge_stats.hpp"

namespace qlink::routing {

ReservationTable::ReservationTable(const Graph& graph)
    : leases_(graph.num_edges()) {
  capacity_.reserve(graph.num_edges());
  for (std::size_t i = 0; i < graph.num_edges(); ++i) {
    capacity_.push_back(graph.params(i).capacity);
  }
}

bool ReservationTable::window_fits(std::size_t edge, sim::SimTime start,
                                   sim::SimTime end) const {
  // A lease [s, e) overlaps the window [start, end) iff e > start and
  // s < end. Counting *overlapping* leases is conservative for
  // capacity > 1 (two leases may overlap the window at different
  // instants), which keeps booked windows honest: a slot promised by
  // earliest_window can never be half-occupied when it arrives.
  const std::vector<Lease>& held = leases_.at(edge);
  std::size_t overlapping = 0;
  for (const Lease& lease : held) {
    if (lease.end > start && lease.start < end) ++overlapping;
  }
  return overlapping < capacity_.at(edge);
}

bool ReservationTable::can_reserve(std::span<const std::size_t> edges,
                                   sim::SimTime now,
                                   sim::SimTime duration) const {
  const sim::SimTime end = window_end(now, duration);
  for (const std::size_t e : edges) {
    if (!window_fits(e, now, end)) return false;
  }
  return true;
}

void ReservationTable::validate(std::span<const std::size_t> edges,
                                sim::SimTime duration) const {
  if (edges.empty()) {
    throw std::invalid_argument("ReservationTable: empty path");
  }
  if (duration <= 0) {
    throw std::invalid_argument("ReservationTable: non-positive lease");
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i] >= capacity_.size()) {
      throw std::invalid_argument("ReservationTable: unknown edge id");
    }
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      if (edges[i] == edges[j]) {
        // A repeated edge would count against capacity several times
        // and silently break the edge-disjointness invariant.
        throw std::invalid_argument(
            "ReservationTable: path repeats an edge");
      }
    }
  }
}

bool ReservationTable::conflicts_blocked(
    std::span<const std::size_t> edges) const {
  for (const Blocked& b : blocked_) {
    for (const std::size_t e : b.footprint) {
      if (std::find(edges.begin(), edges.end(), e) != edges.end()) {
        return true;
      }
    }
  }
  return false;
}

std::optional<ReservationTable::Ticket> ReservationTable::reserve_window(
    std::span<const std::size_t> edges, sim::SimTime start,
    sim::SimTime duration, bool count_steal) {
  validate(edges, duration);
  const sim::SimTime end = window_end(start, duration);
  for (const std::size_t e : edges) {
    if (!window_fits(e, start, end)) return std::nullopt;
  }
  // Mid-drain retries are ordered by the drain itself (which counts its
  // own greedy jumps); only out-of-queue admissions are checked here.
  if (count_steal && !draining_ && conflicts_blocked(edges)) ++steals_;
  const Ticket ticket = next_ticket_++;
  for (const std::size_t e : edges) {
    leases_[e].push_back({ticket, start, end});
    if (end != kNoExpiry) finite_ends_.insert(end);
  }
  active_.emplace(ticket, std::vector<std::size_t>(edges.begin(),
                                                   edges.end()));
  max_active_ = std::max(max_active_, active_.size());
  if (edge_stats_ != nullptr) {
    for (const std::size_t e : edges) {
      edge_stats_->on_lease(e, ticket, start, end);
    }
  }
  return ticket;
}

std::optional<ReservationTable::Ticket> ReservationTable::try_reserve(
    std::span<const std::size_t> edges, sim::SimTime now,
    sim::SimTime duration) {
  return reserve_window(edges, now, duration, /*count_steal=*/true);
}

std::optional<ReservationTable::Ticket> ReservationTable::reserve_at(
    std::span<const std::size_t> edges, sim::SimTime start,
    sim::SimTime duration) {
  if (start < 0) {
    throw std::invalid_argument("ReservationTable: negative window start");
  }
  // A booked window is the scheduler keeping a promise to an *older*
  // request; it is never a queue jump.
  return reserve_window(edges, start, duration, /*count_steal=*/false);
}

std::optional<sim::SimTime> ReservationTable::earliest_window(
    std::span<const std::size_t> edges, sim::SimTime now,
    sim::SimTime duration) const {
  validate(edges, duration);
  // Occupancy over a window only drops when a lease ends, so the
  // earliest feasible start is `now` or one of the finite lease ends on
  // the listed edges.
  std::vector<sim::SimTime> candidates{now};
  for (const std::size_t e : edges) {
    for (const Lease& lease : leases_.at(e)) {
      if (lease.end != kNoExpiry && lease.end > now) {
        candidates.push_back(lease.end);
      }
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  for (const sim::SimTime start : candidates) {
    if (can_reserve(edges, start, duration)) return start;
  }
  return std::nullopt;
}

void ReservationTable::release(Ticket ticket, sim::SimTime now) {
  const auto it = active_.find(ticket);
  if (it == active_.end()) {
    throw std::invalid_argument("ReservationTable: unknown ticket");
  }
  if (edge_stats_ != nullptr) {
    for (const std::size_t e : it->second) {
      edge_stats_->on_lease_release(e, ticket, now);
    }
  }
  for (const std::size_t e : it->second) {
    std::vector<Lease>& held = leases_[e];
    // Absent = the lease lapsed earlier (already in lease_expiries_).
    const auto li = std::find_if(
        held.begin(), held.end(),
        [ticket](const Lease& l) { return l.ticket == ticket; });
    if (li != held.end()) {
      if (li->end != kNoExpiry) {
        finite_ends_.erase(finite_ends_.find(li->end));
      }
      held.erase(li);
    }
  }
  active_.erase(it);
  drain_blocked();
}

std::size_t ReservationTable::expire_until(sim::SimTime now) {
  std::size_t lapsed = 0;
  for (std::vector<Lease>& held : leases_) {
    const std::size_t before = held.size();
    std::erase_if(held, [now](const Lease& l) { return l.end <= now; });
    lapsed += before - held.size();
  }
  // One index entry per lapsed edge lease, by construction.
  finite_ends_.erase(finite_ends_.begin(), finite_ends_.upper_bound(now));
  lease_expiries_ += lapsed;
  if (lapsed > 0) drain_blocked();
  return lapsed;
}

std::optional<sim::SimTime> ReservationTable::next_expiry() const {
  if (finite_ends_.empty()) return std::nullopt;
  return *finite_ends_.begin();
}

std::optional<sim::SimTime> ReservationTable::next_expiry_scan() const {
  std::optional<sim::SimTime> next;
  for (const std::vector<Lease>& held : leases_) {
    for (const Lease& lease : held) {
      if (lease.end == kNoExpiry) continue;
      if (!next || lease.end < *next) next = lease.end;
    }
  }
  return next;
}

void ReservationTable::enqueue_blocked(RetryFn retry,
                                       std::vector<std::size_t> footprint) {
  if (edge_stats_ != nullptr) edge_stats_->on_blocked(footprint);
  blocked_.push_back({std::move(retry), std::move(footprint)});
}

void ReservationTable::drain_blocked() {
  // A retry may reserve and a later completion may release (or a lease
  // lapse) reentrantly; instead of recursing, ask the outermost sweep
  // to run one more pass.
  if (draining_) {
    redrain_ = true;
    return;
  }
  draining_ = true;
  do {
    redrain_ = false;
    // Retry a snapshot in queue order and rebuild the queue with the
    // still-blocked ones first: arrival order survives mixed
    // release/expiry wakeups, thrown retries, and mid-sweep enqueues.
    std::deque<Blocked> round;
    round.swap(blocked_);
    std::deque<Blocked> still;
    // Edges that still-blocked earlier entries of this sweep are
    // waiting for; a later entry touching one of them either gets
    // withheld (kPerEdgeFifo) or counted as a queue jump (kGreedy).
    std::vector<std::size_t> held_edges;
    bool earlier_blocked = false;
    const auto conflicts_held = [&held_edges](const Blocked& b) {
      for (const std::size_t e : b.footprint) {
        if (std::find(held_edges.begin(), held_edges.end(), e) !=
            held_edges.end()) {
          return true;
        }
      }
      return false;
    };
    while (!round.empty()) {
      Blocked entry = std::move(round.front());
      round.pop_front();
      const bool conflict = conflicts_held(entry);
      if (policy_ == DrainPolicy::kPerEdgeFifo && conflict) {
        // An older request sharing an edge is still blocked: hold this
        // one back so FIFO survives per conflicting edge set.
        ++hol_holds_;
        earlier_blocked = true;
        held_edges.insert(held_edges.end(), entry.footprint.begin(),
                          entry.footprint.end());
        still.push_back(std::move(entry));
        continue;
      }
      bool left = false;
      try {
        left = entry.retry();
      } catch (...) {
        // Keep the table usable for everyone else: restore the queue
        // (minus the poisoned retry — it would only throw again) in
        // arrival order and clear the drain flag, or every later
        // release() would skip its sweep forever.
        for (Blocked& r : round) still.push_back(std::move(r));
        for (Blocked& r : blocked_) still.push_back(std::move(r));
        blocked_ = std::move(still);
        draining_ = false;
        redrain_ = false;
        throw;
      }
      if (left) {
        if (conflict) ++steals_;  // kGreedy: jumped a blocked elder
        if (earlier_blocked) ++batch_admits_;
      } else {
        earlier_blocked = true;
        held_edges.insert(held_edges.end(), entry.footprint.begin(),
                          entry.footprint.end());
        still.push_back(std::move(entry));
      }
    }
    for (Blocked& r : blocked_) still.push_back(std::move(r));
    blocked_ = std::move(still);
  } while (redrain_);
  draining_ = false;
}

}  // namespace qlink::routing
