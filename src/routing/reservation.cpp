#include "routing/reservation.hpp"

#include <algorithm>
#include <stdexcept>

namespace qlink::routing {

ReservationTable::ReservationTable(const Graph& graph)
    : in_use_(graph.num_edges(), 0) {
  capacity_.reserve(graph.num_edges());
  for (std::size_t i = 0; i < graph.num_edges(); ++i) {
    capacity_.push_back(graph.params(i).capacity);
  }
}

bool ReservationTable::can_reserve(
    std::span<const std::size_t> edges) const {
  for (const std::size_t e : edges) {
    if (in_use_.at(e) >= capacity_.at(e)) return false;
  }
  return true;
}

std::optional<ReservationTable::Ticket> ReservationTable::try_reserve(
    std::span<const std::size_t> edges) {
  if (edges.empty()) {
    throw std::invalid_argument("ReservationTable: empty path");
  }
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (edges[i] >= capacity_.size()) {
      throw std::invalid_argument("ReservationTable: unknown edge id");
    }
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      if (edges[i] == edges[j]) {
        // A repeated edge would count against capacity several times
        // and silently break the edge-disjointness invariant.
        throw std::invalid_argument(
            "ReservationTable: path repeats an edge");
      }
    }
  }
  if (!can_reserve(edges)) return std::nullopt;
  for (const std::size_t e : edges) ++in_use_[e];
  const Ticket ticket = next_ticket_++;
  active_.emplace(ticket, std::vector<std::size_t>(edges.begin(),
                                                   edges.end()));
  max_active_ = std::max(max_active_, active_.size());
  return ticket;
}

void ReservationTable::release(Ticket ticket) {
  const auto it = active_.find(ticket);
  if (it == active_.end()) {
    throw std::invalid_argument("ReservationTable: unknown ticket");
  }
  for (const std::size_t e : it->second) --in_use_[e];
  active_.erase(it);
  drain_blocked();
}

void ReservationTable::enqueue_blocked(RetryFn retry) {
  blocked_.push_back(std::move(retry));
}

void ReservationTable::drain_blocked() {
  // A retry may reserve and a later completion may release reentrantly;
  // let the outermost drain finish the sweep instead of recursing.
  if (draining_) return;
  draining_ = true;
  std::size_t remaining = blocked_.size();
  try {
    while (remaining-- > 0 && !blocked_.empty()) {
      RetryFn retry = std::move(blocked_.front());
      blocked_.pop_front();
      if (!retry()) blocked_.push_back(std::move(retry));
    }
  } catch (...) {
    // Keep the table usable for everyone else: clear the drain flag
    // (or every later release() would skip its sweep forever) and drop
    // the poisoned retry — it would only throw again.
    draining_ = false;
    throw;
  }
  draining_ = false;
}

}  // namespace qlink::routing
