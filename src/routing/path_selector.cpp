#include "routing/path_selector.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "qstate/bell_algebra.hpp"

namespace qlink::routing {

namespace ba = qstate::bell_algebra;

namespace {

/// Werner parameter of a pair at fidelity f; floored far enough above
/// zero that -log stays finite for useless links (f <= 1/4 carries no
/// entanglement at all).
constexpr double kMinWerner = 1e-9;

double werner(double fidelity) {
  return std::max(kMinWerner, (4.0 * fidelity - 1.0) / 3.0);
}

/// Bell coefficient vector of the Werner state with fidelity f in the
/// corrected (Phi+-indexed) frame: the swap cascade's conditional
/// Paulis fold every outcome branch back to index 0, so composing in
/// this frame with mu = 0 is the expected end-to-end state.
ba::BellCoeffs werner_coeffs(double fidelity) {
  const double f = std::clamp(fidelity, 0.0, 1.0);
  const double rest = (1.0 - f) / 3.0;
  return {f, rest, rest, rest};
}

}  // namespace

const char* cost_model_name(CostModel model) noexcept {
  switch (model) {
    case CostModel::kHopCount:
      return "hops";
    case CostModel::kFidelity:
      return "fidelity";
    case CostModel::kLatency:
      return "latency";
  }
  return "?";
}

std::optional<CostModel> parse_cost_model(std::string_view name) noexcept {
  if (name == "hops" || name == "hopcount") return CostModel::kHopCount;
  if (name == "fidelity") return CostModel::kFidelity;
  if (name == "latency") return CostModel::kLatency;
  return std::nullopt;
}

PathSelector::PathSelector(const Graph& graph, CostModel model)
    : graph_(graph), model_(model) {}

double PathSelector::edge_weight(std::size_t edge) const {
  const EdgeParams& p = graph_.params(edge);
  switch (model_) {
    case CostModel::kHopCount:
      return 1.0;
    case CostModel::kFidelity:
      return -std::log(werner(p.fidelity));
    case CostModel::kLatency:
      return p.pair_time_s + p.delay_s;
  }
  return 1.0;
}

std::optional<Path> PathSelector::dijkstra(
    std::uint32_t src, std::uint32_t dst,
    const std::vector<bool>& banned_nodes,
    const std::vector<bool>& banned_edges) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::size_t n = graph_.num_nodes();
  std::vector<double> dist(n, kInf);
  std::vector<std::size_t> via_edge(n, Graph::npos);
  std::vector<std::uint32_t> via_node(n, 0);

  // (distance, node): ties resolve to the lowest node id, so candidate
  // enumeration is deterministic across platforms.
  using Entry = std::pair<double, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> frontier;
  dist[src] = 0.0;
  frontier.emplace(0.0, src);

  while (!frontier.empty()) {
    const auto [d, u] = frontier.top();
    frontier.pop();
    if (d > dist[u]) continue;
    if (u == dst) break;
    for (const Graph::Adjacency& adj : graph_.neighbors(u)) {
      if (banned_edges[adj.edge] || banned_nodes[adj.peer]) continue;
      const double nd = d + edge_weight(adj.edge);
      if (nd < dist[adj.peer]) {
        dist[adj.peer] = nd;
        via_edge[adj.peer] = adj.edge;
        via_node[adj.peer] = u;
        frontier.emplace(nd, adj.peer);
      }
    }
  }
  if (dist[dst] == kInf) return std::nullopt;

  Path path;
  path.cost = dist[dst];
  for (std::uint32_t v = dst; v != src; v = via_node[v]) {
    path.edges.push_back(via_edge[v]);
    path.nodes.push_back(v);
  }
  path.nodes.push_back(src);
  std::reverse(path.edges.begin(), path.edges.end());
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

std::optional<Path> PathSelector::shortest(std::uint32_t src,
                                           std::uint32_t dst) const {
  if (src >= graph_.num_nodes() || dst >= graph_.num_nodes()) {
    throw std::invalid_argument("PathSelector: node id out of range");
  }
  if (src == dst) {
    throw std::invalid_argument("PathSelector: src == dst");
  }
  return dijkstra(src, dst, std::vector<bool>(graph_.num_nodes(), false),
                  std::vector<bool>(graph_.num_edges(), false));
}

std::vector<Path> PathSelector::k_shortest(std::uint32_t src,
                                           std::uint32_t dst,
                                           std::size_t k) const {
  return yen(src, dst, k, std::vector<bool>(graph_.num_edges(), false));
}

std::vector<Path> PathSelector::k_shortest(
    std::uint32_t src, std::uint32_t dst, std::size_t k,
    std::span<const std::size_t> excluded_edges) const {
  std::vector<bool> excluded(graph_.num_edges(), false);
  for (const std::size_t e : excluded_edges) {
    if (e >= graph_.num_edges()) {
      throw std::invalid_argument("PathSelector: unknown excluded edge");
    }
    excluded[e] = true;
  }
  return yen(src, dst, k, excluded);
}

std::vector<Path> PathSelector::yen(std::uint32_t src, std::uint32_t dst,
                                    std::size_t k,
                                    const std::vector<bool>& excluded)
    const {
  if (src >= graph_.num_nodes() || dst >= graph_.num_nodes()) {
    throw std::invalid_argument("PathSelector: node id out of range");
  }
  if (src == dst) {
    throw std::invalid_argument("PathSelector: src == dst");
  }
  std::vector<Path> found;
  if (k == 0) return found;
  auto first = dijkstra(src, dst,
                        std::vector<bool>(graph_.num_nodes(), false),
                        excluded);
  if (!first) return found;
  found.push_back(std::move(*first));

  // Yen's algorithm: spur off every prefix of the last accepted path
  // with that prefix's edges/nodes banned, keep the cheapest candidate.
  const auto path_less = [](const Path& a, const Path& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.nodes < b.nodes;  // deterministic tie-break
  };
  std::vector<Path> candidates;

  while (found.size() < k) {
    const Path& prev = found.back();
    for (std::size_t i = 0; i < prev.edges.size(); ++i) {
      const std::uint32_t spur = prev.nodes[i];

      std::vector<bool> banned_nodes(graph_.num_nodes(), false);
      std::vector<bool> banned_edges = excluded;
      // The root path up to the spur node must not be re-entered.
      for (std::size_t j = 0; j < i; ++j) banned_nodes[prev.nodes[j]] = true;
      // Any accepted path sharing this root must deviate here.
      for (const Path& p : found) {
        if (p.edges.size() > i &&
            std::equal(p.nodes.begin(), p.nodes.begin() + i + 1,
                       prev.nodes.begin())) {
          banned_edges[p.edges[i]] = true;
        }
      }

      const auto spur_path =
          spur == dst ? std::nullopt
                      : dijkstra(spur, dst, banned_nodes, banned_edges);
      if (!spur_path) continue;

      Path total;
      total.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + i);
      total.edges.assign(prev.edges.begin(), prev.edges.begin() + i);
      total.nodes.insert(total.nodes.end(), spur_path->nodes.begin(),
                         spur_path->nodes.end());
      total.edges.insert(total.edges.end(), spur_path->edges.begin(),
                         spur_path->edges.end());
      total.cost = spur_path->cost;
      for (std::size_t j = 0; j < i; ++j) {
        total.cost += edge_weight(prev.edges[j]);
      }

      const auto dup = [&](const Path& p) {
        return p.edges == total.edges;
      };
      if (std::none_of(found.begin(), found.end(), dup) &&
          std::none_of(candidates.begin(), candidates.end(), dup)) {
        candidates.push_back(std::move(total));
      }
    }
    if (candidates.empty()) break;
    const auto best =
        std::min_element(candidates.begin(), candidates.end(), path_less);
    found.push_back(std::move(*best));
    candidates.erase(best);
  }
  return found;
}

double PathSelector::estimated_fidelity(const Graph& graph,
                                        const Path& path) {
  if (path.edges.empty()) return 0.0;
  ba::BellCoeffs acc = werner_coeffs(graph.params(path.edges[0]).fidelity);
  for (std::size_t i = 1; i < path.edges.size(); ++i) {
    acc = ba::swap_coefficients(
        acc, werner_coeffs(graph.params(path.edges[i]).fidelity), 0, 0);
  }
  return acc[0];
}

double PathSelector::estimated_latency_s(const Graph& graph,
                                         const Path& path) {
  double total = 0.0;
  for (const std::size_t e : path.edges) {
    total += graph.params(e).pair_time_s + graph.params(e).delay_s;
  }
  return total;
}

}  // namespace qlink::routing
