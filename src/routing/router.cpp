#include "routing/router.hpp"

#include <stdexcept>
#include <string>
#include <utility>

namespace qlink::routing {

netlayer::NetworkConfig make_network_config(
    const Graph& graph, const core::LinkConfig& link_template,
    std::uint64_t seed) {
  netlayer::NetworkConfig config;
  config.link = link_template;
  config.seed = seed;
  config.num_nodes = graph.num_nodes();
  config.edges.reserve(graph.num_edges());
  for (const Graph::Edge& e : graph.edges()) {
    config.edges.emplace_back(e.a, e.b);
  }
  return config;
}

Router::Router(Graph graph, netlayer::QuantumNetwork& network,
               netlayer::SwapService& swap, const RouterConfig& config,
               metrics::Collector* collector)
    : graph_(std::move(graph)),
      net_(network),
      swap_(swap),
      config_(config),
      collector_(collector),
      selector_(graph_, config.cost),
      reservations_(graph_) {
  if (graph_.num_edges() != net_.num_links() ||
      graph_.num_nodes() != net_.num_nodes()) {
    throw std::invalid_argument(
        "Router: graph and network disagree on size");
  }
  for (std::size_t i = 0; i < graph_.num_edges(); ++i) {
    const Graph::Edge& e = graph_.edge(i);
    const auto [a, b] = net_.endpoints(i);
    const bool match = (e.a == a && e.b == b) || (e.a == b && e.b == a);
    if (!match) {
      throw std::invalid_argument("Router: edge " + std::to_string(i) +
                                  " does not match link " +
                                  std::to_string(i) + "'s endpoints");
    }
  }
  if (config_.k_candidates == 0) {
    throw std::invalid_argument("Router: k_candidates must be positive");
  }
  swap_.set_deliver_handler(
      [this](const netlayer::E2eOk& ok) { on_deliver(ok); });
  swap_.set_error_handler(
      [this](const netlayer::E2eErr& err) { on_error(err); });
}

void Router::annotate_from_network(std::span<const double> floor_menu) {
  if (floor_menu.empty()) {
    throw std::invalid_argument("Router: empty floor menu");
  }
  for (std::size_t i = 0; i < graph_.num_edges(); ++i) {
    EdgeParams& params = graph_.params(i);
    core::Link& link = net_.link(i);
    params.delay_s = sim::to_seconds(link.scenario().delay_a_to_b());
    params.link_floor = 0.0;
    params.fidelity = 0.25;  // separable: the fidelity model shuns it
    params.pair_time_s = 1.0;
    for (const double floor : floor_menu) {
      const auto estimate = link.estimate_k_create(floor);
      if (estimate.feasible) {
        params.link_floor = floor;
        params.fidelity = estimate.fidelity;
        params.pair_time_s = estimate.pair_time_s;
        break;
      }
    }
  }
}

std::vector<netlayer::Hop> Router::to_hops(const Path& path) const {
  std::vector<netlayer::Hop> hops;
  hops.reserve(path.edges.size());
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    const std::size_t link = path.edges[i];
    const auto [a, b] = net_.endpoints(link);
    (void)b;
    hops.push_back(netlayer::Hop{link, path.nodes[i] != a});
  }
  return hops;
}

std::vector<double> Router::hop_floors(const Path& path) const {
  std::vector<double> floors;
  floors.reserve(path.edges.size());
  for (const std::size_t e : path.edges) {
    floors.push_back(graph_.params(e).link_floor);
  }
  return floors;
}

bool Router::try_admit(const netlayer::E2eRequest& request,
                       const std::vector<Path>& candidates) {
  for (const Path& path : candidates) {
    const auto ticket = reservations_.try_reserve(path.edges);
    if (!ticket) continue;
    std::uint32_t id = 0;
    try {
      id = swap_.request(request, to_hops(path), hop_floors(path));
    } catch (...) {
      // A malformed pinned path (submit_on checks only the endpoints)
      // must not leak its reservation and wedge the edges forever.
      reservations_.release(*ticket);
      throw;
    }
    in_flight_.emplace(id, *ticket);
    last_admitted_ = id;
    ++stats_.admitted;
    if (collector_) collector_->record_route(path.hops());
    return true;
  }
  return false;
}

std::uint32_t Router::submit(const netlayer::E2eRequest& request) {
  std::vector<Path> candidates = selector_.k_shortest(
      request.src, request.dst, config_.k_candidates);
  if (candidates.empty()) {
    throw std::invalid_argument("Router: no path between nodes " +
                                std::to_string(request.src) + " and " +
                                std::to_string(request.dst));
  }
  return submit_candidates(request, std::move(candidates));
}

std::uint32_t Router::submit_on(const netlayer::E2eRequest& request,
                                const Path& path) {
  // Validate the full walk now: a malformed path could otherwise sit in
  // the blocked queue and only throw later, from inside the simulator
  // event that releases a reservation. Shape first — src()/dst() read
  // nodes.front()/back().
  if (path.edges.empty() || path.nodes.size() != path.edges.size() + 1) {
    throw std::invalid_argument("Router: pinned path nodes/edges mismatch");
  }
  if (path.src() != request.src || path.dst() != request.dst) {
    throw std::invalid_argument(
        "Router: pinned path does not join the request's endpoints");
  }
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    if (path.edges[i] >= graph_.num_edges() ||
        graph_.find_edge(path.nodes[i], path.nodes[i + 1]) !=
            path.edges[i]) {
      throw std::invalid_argument(
          "Router: pinned path is not a walk over graph edges");
    }
  }
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < path.nodes.size(); ++j) {
      if (path.nodes[i] == path.nodes[j]) {
        throw std::invalid_argument("Router: pinned path revisits node " +
                                    std::to_string(path.nodes[i]));
      }
    }
  }
  return submit_candidates(request, {path});
}

std::uint32_t Router::submit_candidates(netlayer::E2eRequest request,
                                        std::vector<Path> candidates) {
  // Latency is measured from here: time a request spends queued behind
  // reservations is part of its service time.
  if (request.submitted_at < 0) {
    request.submitted_at = net_.simulator().now();
  }
  // try_admit may throw on a malformed pinned path; count the request
  // only once it is known to be admitted, queued, or rejected, so
  // submitted == admitted + blocked + rejected stays an invariant.
  const bool admitted = try_admit(request, candidates);
  ++stats_.submitted;
  if (admitted) {
    return last_admitted_;
  }
  if (!config_.queue_blocked) {
    ++stats_.rejected;
    return 0;
  }
  ++stats_.blocked;
  if (collector_) collector_->record_blocked();
  reservations_.enqueue_blocked(
      [this, request, candidates = std::move(candidates)] {
        return try_admit(request, candidates);
      });
  return 0;
}

void Router::on_deliver(const netlayer::E2eOk& ok) {
  ++stats_.pairs_delivered;
  if (on_deliver_) {
    on_deliver_(ok);
  } else {
    // Same policy as an unhandled SwapService delivery: a pair nobody
    // consumes must not pin device memory forever.
    swap_.release(ok);
  }
  if (ok.pair_index + 1 == ok.total_pairs) {
    ++stats_.completed;
    const auto it = in_flight_.find(ok.request_id);
    if (it != in_flight_.end()) {
      const ReservationTable::Ticket ticket = it->second;
      in_flight_.erase(it);
      // May reentrantly admit blocked requests (fresh SwapService
      // CREATEs fire from inside this delivery).
      reservations_.release(ticket);
    }
  }
}

void Router::on_error(const netlayer::E2eErr& err) {
  ++stats_.failed;
  if (on_error_) on_error_(err);
  const auto it = in_flight_.find(err.request_id);
  if (it != in_flight_.end()) {
    const ReservationTable::Ticket ticket = it->second;
    in_flight_.erase(it);
    reservations_.release(ticket);
  }
}

}  // namespace qlink::routing
