#include "routing/router.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "metrics/edge_stats.hpp"

namespace qlink::routing {

netlayer::NetworkConfig make_network_config(
    const Graph& graph, const core::LinkConfig& link_template,
    std::uint64_t seed) {
  netlayer::NetworkConfig config;
  config.link = link_template;
  config.seed = seed;
  config.num_nodes = graph.num_nodes();
  config.edges.reserve(graph.num_edges());
  for (const Graph::Edge& e : graph.edges()) {
    config.edges.emplace_back(e.a, e.b);
  }
  return config;
}

Router::Router(Graph graph, netlayer::EntanglementPlane& plane,
               const RouterConfig& config, metrics::Collector* collector)
    : graph_(std::move(graph)),
      plane_(plane),
      engine_ref_(plane.engine_ref()),
      sim_(engine_ref_.sim()),
      config_(config),
      collector_(collector),
      selector_(graph_, config.cost),
      reservations_(graph_) {
  if (graph_.num_edges() != plane_.num_links() ||
      graph_.num_nodes() != plane_.num_nodes()) {
    throw std::invalid_argument("Router: graph and plane disagree on size");
  }
  for (std::size_t i = 0; i < graph_.num_edges(); ++i) {
    const Graph::Edge& e = graph_.edge(i);
    const auto [a, b] = plane_.endpoints(i);
    const bool match = (e.a == a && e.b == b) || (e.a == b && e.b == a);
    if (!match) {
      throw std::invalid_argument("Router: edge " + std::to_string(i) +
                                  " does not match link " +
                                  std::to_string(i) + "'s endpoints");
    }
  }
  if (config_.k_candidates == 0) {
    throw std::invalid_argument("Router: k_candidates must be positive");
  }
  reservations_.set_drain_policy(config_.batch_admission
                                     ? DrainPolicy::kPerEdgeFifo
                                     : DrainPolicy::kGreedy);
  plane_.set_deliver_handler(
      [this](const netlayer::E2eOk& ok) { on_deliver(ok); });
  plane_.set_error_handler(
      [this](const netlayer::E2eErr& err) { on_error(err); });
}

Router::Router(Graph graph, netlayer::QuantumNetwork& network,
               netlayer::SwapService& swap, const RouterConfig& config,
               metrics::Collector* collector)
    : Router(std::move(graph), static_cast<netlayer::EntanglementPlane&>(swap),
             config, collector) {
  if (swap.network() != &network) {
    throw std::invalid_argument(
        "Router: swap service was built over a different network");
  }
}

void Router::set_edge_stats(metrics::EdgeStats* stats) noexcept {
  edge_stats_ = stats;
  reservations_.set_edge_stats(stats);
  plane_.set_edge_stats(stats);
}

Router::~Router() {
  // Pending lease-expiry and deferred-submission events capture `this`.
  if (expiry_event_) sim_.cancel(*expiry_event_);
  for (const sim::EventId id : deferred_events_) {
    sim_.cancel(id);
  }
}

void Router::annotate_from_network(std::span<const double> floor_menu) {
  if (floor_menu.empty()) {
    throw std::invalid_argument("Router: empty floor menu");
  }
  for (std::size_t i = 0; i < graph_.num_edges(); ++i) {
    EdgeParams& params = graph_.params(i);
    params.delay_s = plane_.link_delay_s(i);
    params.link_floor = 0.0;
    params.fidelity = 0.25;  // separable: the fidelity model shuns it
    params.pair_time_s = 1.0;
    for (const double floor : floor_menu) {
      const auto estimate = plane_.estimate_link(i, floor);
      if (estimate.feasible) {
        params.link_floor = floor;
        params.fidelity = estimate.fidelity;
        params.pair_time_s = estimate.pair_time_s;
        break;
      }
    }
  }
  path_cache_.clear();  // costs changed: cached candidates are stale
}

void Router::refresh_annotations(const RefreshOptions& options) {
  annotate_from_network(options.floor_menu);  // the static baseline
  const bool first_refresh = freshness_.empty();
  if (first_refresh) freshness_.resize(graph_.num_edges());
  const sim::SimTime now = sim_.now();
  for (std::size_t i = 0; i < graph_.num_edges(); ++i) {
    const auto measured = plane_.measured_estimate(i);
    EdgeFreshness& fresh = freshness_[i];
    if (first_refresh) {
      // Rounds recorded before anyone watched cannot be dated; treat
      // them as aged since sim start (last_fresh stays 0) rather than
      // letting a long-stale record masquerade as fresh.
      fresh.rounds_seen = measured.rounds;
    } else if (measured.rounds > fresh.rounds_seen) {
      fresh.rounds_seen = measured.rounds;
      fresh.last_fresh = now;
    }
    if (!measured.fidelity || measured.rounds < options.min_rounds) {
      continue;  // not enough data: stay on the model
    }
    const double age_s = sim::to_seconds(now - fresh.last_fresh);
    const double weight = options.stale_halflife_s <= 0.0
                              ? 0.0
                              : std::exp2(-age_s / options.stale_halflife_s);
    EdgeParams& params = graph_.params(i);
    params.fidelity =
        weight * *measured.fidelity + (1.0 - weight) * params.fidelity;
  }
  // Fidelity-recovery signal for exclusion decay: an edge whose blended
  // estimate rose by >= recovery_min_gain since the previous refresh is
  // stamped recovered — exclusion entries older than the stamp are
  // dropped at the next re-route (prune_exclusions).
  if (recovered_at_.empty()) recovered_at_.resize(graph_.num_edges(), 0);
  const bool have_prev = !prev_refresh_fidelity_.empty();
  if (!have_prev) prev_refresh_fidelity_.resize(graph_.num_edges(), 0.0);
  for (std::size_t i = 0; i < graph_.num_edges(); ++i) {
    const double fidelity = graph_.params(i).fidelity;
    if (have_prev &&
        fidelity >= prev_refresh_fidelity_[i] + config_.recovery_min_gain) {
      recovered_at_[i] = now;
    }
    prev_refresh_fidelity_[i] = fidelity;
  }
}

std::vector<netlayer::Hop> Router::to_hops(const Path& path) const {
  std::vector<netlayer::Hop> hops;
  hops.reserve(path.edges.size());
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    const std::size_t link = path.edges[i];
    const auto [a, b] = plane_.endpoints(link);
    (void)b;
    hops.push_back(netlayer::Hop{link, path.nodes[i] != a});
  }
  return hops;
}

std::vector<double> Router::hop_floors(const Path& path) const {
  std::vector<double> floors;
  floors.reserve(path.edges.size());
  for (const std::size_t e : path.edges) {
    floors.push_back(graph_.params(e).link_floor);
  }
  return floors;
}

sim::SimTime Router::lease_duration(
    const Path& path, const netlayer::E2eRequest& request) const {
  if (config_.lease_slack <= 0.0) return ReservationTable::kNoExpiry;
  double slowest = 0.0;
  for (const std::size_t e : path.edges) {
    slowest = std::max(slowest, graph_.params(e).pair_time_s);
  }
  const double window_s =
      config_.lease_slack * slowest *
      static_cast<double>(std::max<std::uint16_t>(request.num_pairs, 1));
  return std::max<sim::SimTime>(sim::duration::seconds(window_s), 1);
}

std::uint32_t Router::try_admit(FlightState& flight) {
  const sim::SimTime now = sim_.now();
  for (const Path& path : flight.candidates) {
    const auto ticket = reservations_.try_reserve(
        path.edges, now, lease_duration(path, flight.request));
    if (!ticket) continue;
    std::uint32_t id = 0;
    try {
      id = plane_.submit(flight.request, to_hops(path), hop_floors(path));
    } catch (...) {
      // A malformed pinned path (submit_on checks only the endpoints)
      // must not leak its reservation and wedge the edges forever.
      reservations_.release(*ticket, now);
      throw;
    }
    flight.ticket = *ticket;
    ++stats_.admitted;
    // Count the reroute only here, where the resubmission actually
    // reached the SwapService (record_resubmit fired inside request),
    // so Stats::rerouted and Collector::reroutes always agree.
    if (flight.request.resubmission_of != 0) ++stats_.rerouted;
    if (flight.request.resubmission_of == 0 &&
        flight.request.submitted_at >= 0) {
      // Admission wait covers submit -> first admission (0 for an
      // instant admit, the queueing time for a drained one);
      // resubmissions keep their original latency accounting instead.
      const double wait_s =
          sim::to_seconds(now - flight.request.submitted_at);
      if (collector_) {
        collector_->record_admission_wait(wait_s, flight.request.src, id);
      }
      if (edge_stats_) edge_stats_->on_admission_wait(path.edges, wait_s);
    }
    if (collector_) collector_->record_route(path.hops());
    if (tracer_ && flight.request.resubmission_of == 0 &&
        flight.request.submitted_at >= 0 &&
        now > flight.request.submitted_at) {
      tracer_->complete(flight.request.trace_id, "router", "admission_wait",
                        flight.request.submitted_at, now);
    }
    in_flight_.emplace(id, std::move(flight));
    schedule_expiry_wakeup();
    sync_contention_metrics();
    return id;
  }
  sync_contention_metrics();
  return 0;
}

bool Router::try_defer(FlightState& flight) {
  if (!config_.defer_admission) return false;
  const sim::SimTime now = sim_.now();
  // Book the candidate whose window opens first; ties keep candidate
  // (cost) order.
  const Path* best = nullptr;
  sim::SimTime best_start = 0;
  sim::SimTime best_duration = 0;
  for (const Path& path : flight.candidates) {
    const sim::SimTime duration = lease_duration(path, flight.request);
    const auto start =
        reservations_.earliest_window(path.edges, now, duration);
    if (!start) continue;
    if (best == nullptr || *start < best_start) {
      best = &path;
      best_start = *start;
      best_duration = duration;
    }
  }
  if (best == nullptr) return false;  // every candidate pinned shut
  const auto ticket =
      reservations_.reserve_at(best->edges, best_start, best_duration);
  if (!ticket) return false;  // cannot happen: same-event recompute
  flight.ticket = *ticket;
  ++stats_.deferred;
  stats_.deferred_wait_total += best_start - now;
  // The SwapService id does not exist yet; remember the booked wait so
  // submit_deferred can attribute it to the request's deferral phase.
  flight.booked_wait_s += sim::to_seconds(best_start - now);
  if (collector_) {
    collector_->record_deferral(sim::to_seconds(best_start - now));
  }
  if (tracer_) {
    // The booked window is known now, so the span can be emitted
    // eagerly even though it ends in the (simulated) future.
    tracer_->complete(flight.request.trace_id, "router", "deferral_window",
                      now, best_start);
  }
  // The booked path must survive until the window opens; candidates
  // live in the flight, so remember it by value in the closure. The
  // closure learns its own event id through the shared holder so it can
  // retire itself from deferred_events_ when it fires (the destructor
  // must not cancel an already-fired event).
  auto id_holder = std::make_shared<sim::EventId>(0);
  const sim::EventId id = sim_.schedule_at(
      best_start,
      [this, id_holder, flight = std::move(flight), path = *best]() mutable {
        deferred_events_.erase(*id_holder);
        submit_deferred(std::move(flight), path);
      },
      "router.deferred");
  *id_holder = id;
  deferred_events_.insert(id);
  return true;
}

void Router::submit_deferred(FlightState flight, const Path& path) {
  std::uint32_t id = 0;
  try {
    id = plane_.submit(flight.request, to_hops(path), hop_floors(path));
  } catch (...) {
    reservations_.release(flight.ticket, sim_.now());
    throw;
  }
  ++stats_.admitted;
  if (flight.request.resubmission_of != 0) ++stats_.rerouted;
  if (flight.request.resubmission_of == 0 &&
      flight.request.submitted_at >= 0) {
    const double wait_s = sim::to_seconds(sim_.now() -
                                          flight.request.submitted_at);
    if (collector_) {
      collector_->record_admission_wait(wait_s, flight.request.src, id);
    }
    if (edge_stats_) edge_stats_->on_admission_wait(path.edges, wait_s);
  }
  if (collector_) {
    collector_->record_route(path.hops());
    collector_->attribute_deferral(flight.request.src, id,
                                   flight.booked_wait_s);
  }
  // Attributed; a later re-route that defers again must not re-count it.
  flight.booked_wait_s = 0.0;
  if (tracer_ && flight.request.resubmission_of == 0 &&
      flight.request.submitted_at >= 0 &&
      sim_.now() > flight.request.submitted_at) {
    tracer_->complete(flight.request.trace_id, "router", "admission_wait",
                      flight.request.submitted_at, sim_.now());
  }
  in_flight_.emplace(id, std::move(flight));
  schedule_expiry_wakeup();
}

std::vector<Path> Router::candidates_for(std::uint32_t src,
                                         std::uint32_t dst) {
  if (!config_.cache_paths) {
    return selector_.k_shortest(src, dst, config_.k_candidates);
  }
  const auto key = std::make_pair(src, dst);
  const auto it = path_cache_.find(key);
  if (it != path_cache_.end()) return it->second;
  std::vector<Path> candidates =
      selector_.k_shortest(src, dst, config_.k_candidates);
  path_cache_.emplace(key, candidates);
  return candidates;
}

std::uint32_t Router::submit(const netlayer::E2eRequest& request) {
  std::vector<Path> candidates = candidates_for(request.src, request.dst);
  if (candidates.empty()) {
    throw std::invalid_argument("Router: no path between nodes " +
                                std::to_string(request.src) + " and " +
                                std::to_string(request.dst));
  }
  FlightState flight;
  flight.request = request;
  flight.candidates = std::move(candidates);
  return submit_flight(std::move(flight));
}

std::uint32_t Router::submit_on(const netlayer::E2eRequest& request,
                                const Path& path) {
  // Validate the full walk now: a malformed path could otherwise sit in
  // the blocked queue and only throw later, from inside the simulator
  // event that releases a reservation. Shape first — src()/dst() read
  // nodes.front()/back().
  if (path.edges.empty() || path.nodes.size() != path.edges.size() + 1) {
    throw std::invalid_argument("Router: pinned path nodes/edges mismatch");
  }
  if (path.src() != request.src || path.dst() != request.dst) {
    throw std::invalid_argument(
        "Router: pinned path does not join the request's endpoints");
  }
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    if (path.edges[i] >= graph_.num_edges() ||
        graph_.find_edge(path.nodes[i], path.nodes[i + 1]) !=
            path.edges[i]) {
      throw std::invalid_argument(
          "Router: pinned path is not a walk over graph edges");
    }
  }
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < path.nodes.size(); ++j) {
      if (path.nodes[i] == path.nodes[j]) {
        throw std::invalid_argument("Router: pinned path revisits node " +
                                    std::to_string(path.nodes[i]));
      }
    }
  }
  FlightState flight;
  flight.request = request;
  flight.candidates = {path};
  flight.reroutable = false;
  return submit_flight(std::move(flight));
}

std::uint32_t Router::submit_flight(FlightState flight) {
  // Latency is measured from here: time a request spends queued behind
  // reservations is part of its service time.
  if (flight.request.submitted_at < 0) {
    flight.request.submitted_at = sim_.now();
  }
  if (tracer_) {
    if (flight.request.trace_id == 0) {
      flight.request.trace_id = tracer_->new_trace();
    }
    tracer_->instant(
        flight.request.trace_id, "router", "submit",
        sim_.now(),
        {obs::Tracer::num_arg(
             "src", static_cast<std::uint64_t>(flight.request.src)),
         obs::Tracer::num_arg(
             "dst", static_cast<std::uint64_t>(flight.request.dst)),
         obs::Tracer::num_arg(
             "pairs",
             static_cast<std::uint64_t>(flight.request.num_pairs))});
  }
  // try_admit may throw on a malformed pinned path; count the request
  // only once it is known to be admitted, deferred, queued, or
  // rejected, so submitted == admitted-first-try + deferred-first-try
  // + blocked + rejected stays an invariant (a deferred request joins
  // `admitted` later, when its booked window opens).
  const std::uint32_t id = try_admit(flight);
  ++stats_.submitted;
  if (id != 0) {
    return id;
  }
  if (try_defer(flight)) {
    return 0;  // booked: the submission fires at the window start
  }
  if (!config_.queue_blocked) {
    ++stats_.rejected;
    return 0;
  }
  ++stats_.blocked;
  if (collector_) collector_->record_blocked();
  if (edge_stats_) edge_stats_->on_blocked_request();
  enqueue_flight(std::move(flight));
  return 0;
}

void Router::enqueue_flight(FlightState flight) {
  // The preferred candidate's edges are the drain footprint: what this
  // request is (approximately) waiting for, for per-edge FIFO ordering
  // and steal accounting.
  std::vector<std::size_t> footprint =
      flight.candidates.empty() ? std::vector<std::size_t>{}
                                : flight.candidates.front().edges;
  reservations_.enqueue_blocked(
      [this, flight = std::move(flight)]() mutable {
        return try_admit(flight) != 0;
      },
      std::move(footprint));
  schedule_expiry_wakeup();
}

void Router::prune_exclusions(FlightState& flight, sim::SimTime now) const {
  const sim::SimTime ttl = config_.exclusion_ttl;
  std::erase_if(flight.excluded, [this, now, ttl](const Exclusion& e) {
    if (ttl > 0 && now - e.at >= ttl) return true;
    // Strict >: an exclusion recorded in the same event as a recovery
    // stamp reflects a *later* observation (the edge just failed).
    return edge_recovered_at(e.edge) > e.at;
  });
}

void Router::sync_contention_metrics() {
  if (collector_ == nullptr) return;
  for (; steals_seen_ < reservations_.steals(); ++steals_seen_) {
    collector_->record_steal();
  }
  for (; hol_holds_seen_ < reservations_.hol_holds(); ++hol_holds_seen_) {
    collector_->record_hol_hold();
  }
}

void Router::trace_terminal(const FlightState& flight, const char* outcome) {
  if (tracer_ == nullptr || flight.request.submitted_at < 0) return;
  tracer_->complete(
      flight.request.trace_id, "request", "request",
      flight.request.submitted_at, sim_.now(),
      {obs::Tracer::str_arg("outcome", outcome),
       obs::Tracer::num_arg(
           "src", static_cast<std::uint64_t>(flight.request.src)),
       obs::Tracer::num_arg(
           "dst", static_cast<std::uint64_t>(flight.request.dst)),
       obs::Tracer::num_arg(
           "reroutes", static_cast<std::uint64_t>(flight.reroutes_used))});
}

void Router::queue_or_drop_reroute(FlightState flight,
                                   const netlayer::E2eErr& err) {
  if (try_admit(flight) != 0) return;
  if (try_defer(flight)) return;
  if (config_.queue_blocked) {
    // Not counted in Stats::blocked / record_blocked: those count
    // *requests* that ever queued, and this one already counted at
    // submission if it did.
    enqueue_flight(std::move(flight));
    return;
  }
  // Queueing disabled: the reroute dies here, and the death is
  // terminal — the error handler's contract covers it.
  ++stats_.failed;
  ++stats_.abandoned;
  if (collector_) collector_->record_abandon();
  if (tracer_) {
    tracer_->instant(flight.request.trace_id, "router", "abandon",
                     sim_.now());
    trace_terminal(flight, "abandoned");
  }
  if (on_error_) on_error_(err);
}

void Router::schedule_expiry_wakeup() {
  if (reservations_.blocked() == 0) return;
  const auto next = reservations_.next_expiry();
  if (!next) return;  // only unbounded pins: releases drive retries
  // Always wake from a fresh simulator event — never prune (and so
  // drain the blocked queue) synchronously here, which could reenter
  // try_admit from inside a submit already in progress. A lease that
  // lapsed in the past wakes "now", i.e. right after the current event.
  const sim::SimTime at = std::max(*next, sim_.now());
  if (expiry_event_ && expiry_at_ <= at) return;
  if (expiry_event_) sim_.cancel(*expiry_event_);
  expiry_at_ = at;
  expiry_event_ = sim_.schedule_at(
      at,
      [this] {
        expiry_event_.reset();
        // Prunes every lease lapsed by now and retries the blocked
        // queue; anything still blocked gets the next wakeup.
        reservations_.expire_until(sim_.now());
        sync_contention_metrics();
        schedule_expiry_wakeup();
      },
      "router.expiry");
}

void Router::on_deliver(const netlayer::E2eOk& ok) {
  ++stats_.pairs_delivered;
  const auto flight = in_flight_.find(ok.request_id);
  if (flight != in_flight_.end()) ++flight->second.delivered;
  if (on_deliver_) {
    on_deliver_(ok);
  } else {
    // Same policy as an unhandled SwapService delivery: a pair nobody
    // consumes must not pin device memory forever.
    plane_.release(ok);
  }
  if (ok.pair_index + 1 == ok.total_pairs) {
    ++stats_.completed;
    const auto it = in_flight_.find(ok.request_id);
    if (it != in_flight_.end()) {
      trace_terminal(it->second, "completed");
      const ReservationTable::Ticket ticket = it->second.ticket;
      in_flight_.erase(it);
      // May reentrantly admit blocked requests (fresh SwapService
      // CREATEs fire from inside this delivery).
      reservations_.release(ticket, sim_.now());
      sync_contention_metrics();
      schedule_expiry_wakeup();
    }
  }
}

void Router::on_error(const netlayer::E2eErr& err) {
  const auto it = in_flight_.find(err.request_id);
  if (it == in_flight_.end()) {
    // Not one of ours (or already completed): report and move on.
    ++stats_.failed;
    if (on_error_) on_error_(err);
    return;
  }
  FlightState flight = std::move(it->second);
  in_flight_.erase(it);
  // May reentrantly admit blocked requests; the failed request's own
  // resubmission (below) queues behind them — it already had service.
  reservations_.release(flight.ticket, sim_.now());
  sync_contention_metrics();
  schedule_expiry_wakeup();

  if (flight.reroutable && flight.reroutes_used < config_.max_reroutes) {
    // The failing edge joins the request's exclusion set; surviving
    // candidates (Yen already yielded k) are preferred, and the search
    // only re-runs over the exclusion set once they run dry. Exclusions
    // decay first (TTL / fidelity recovery), so a recovered edge is
    // back in the search space within the re-route budget.
    const sim::SimTime now = sim_.now();
    flight.excluded.push_back({err.link, now});
    prune_exclusions(flight, now);
    std::erase_if(flight.candidates, [&err](const Path& path) {
      return std::find(path.edges.begin(), path.edges.end(), err.link) !=
             path.edges.end();
    });
    if (flight.candidates.empty()) {
      std::vector<std::size_t> excluded_edges;
      excluded_edges.reserve(flight.excluded.size());
      for (const Exclusion& e : flight.excluded) {
        excluded_edges.push_back(e.edge);
      }
      flight.candidates =
          selector_.k_shortest(flight.request.src, flight.request.dst,
                               config_.k_candidates, excluded_edges);
    }
    if (!flight.candidates.empty()) {
      ++flight.reroutes_used;
      // Resume with the remaining pairs; metrics carry the original
      // submission time through resubmission_of.
      flight.request.resubmission_of = err.request_id;
      flight.request.num_pairs = static_cast<std::uint16_t>(
          flight.request.num_pairs - flight.delivered);
      flight.delivered = 0;
      if (tracer_) {
        tracer_->instant(
            flight.request.trace_id, "router", "reroute", now,
            {obs::Tracer::num_arg("failed_link",
                                  static_cast<std::uint64_t>(err.link)),
             obs::Tracer::num_arg(
                 "attempt",
                 static_cast<std::uint64_t>(flight.reroutes_used))});
      }
      queue_or_drop_reroute(std::move(flight), err);
      return;
    }
  }

  ++stats_.failed;
  const bool abandoned = flight.reroutable && config_.max_reroutes > 0;
  if (abandoned) {
    ++stats_.abandoned;
    if (collector_) collector_->record_abandon();
  }
  if (tracer_) {
    tracer_->instant(
        flight.request.trace_id, "router",
        abandoned ? "abandon" : "failed", sim_.now(),
        {obs::Tracer::str_arg("error", core::egp_error_name(err.error)),
         obs::Tracer::num_arg("link",
                              static_cast<std::uint64_t>(err.link))});
    trace_terminal(flight, abandoned ? "abandoned" : "failed");
  }
  if (on_error_) on_error_(err);
}

}  // namespace qlink::routing
