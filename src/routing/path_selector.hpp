#pragma once

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "routing/graph.hpp"

/// \file path_selector.hpp
/// Loop-free candidate-path computation over a routing::Graph.
///
/// A PathSelector turns a cost model into additive per-edge weights and
/// computes the k cheapest simple paths (Yen's algorithm over
/// deterministic Dijkstra). Three cost models ship:
///
///  - kHopCount: every edge costs 1 — classic shortest-path routing.
///  - kFidelity: edge weight -log w with w = (4F - 1)/3, the Werner
///    parameter of a pair at fidelity F. Entanglement swapping multiplies
///    Werner parameters (the XOR-convolution of Bell coefficient vectors,
///    qstate/bell_algebra.hpp), so minimising the sum of -log w maximises
///    the expected end-to-end fidelity estimate. `estimated_fidelity`
///    re-scores a candidate exactly by composing the per-edge Bell
///    coefficient vectors through the swap algebra.
///  - kLatency: edge weight = expected pair-generation time plus the
///    classical delay the swap announcements pick up crossing the edge.
///    (Hops generate in parallel, so the sum is a pessimistic proxy for
///    the wait on the slowest hop; it still orders candidates sensibly
///    because every summand also bounds that maximum.)

namespace qlink::routing {

enum class CostModel { kHopCount, kFidelity, kLatency };

const char* cost_model_name(CostModel model) noexcept;
std::optional<CostModel> parse_cost_model(std::string_view name) noexcept;

/// A simple (loop-free) path: edge ids plus the node sequence they
/// traverse (nodes.size() == edges.size() + 1, nodes.front() == src).
struct Path {
  std::vector<std::size_t> edges;
  std::vector<std::uint32_t> nodes;
  double cost = 0.0;

  std::size_t hops() const noexcept { return edges.size(); }
  std::uint32_t src() const { return nodes.front(); }
  std::uint32_t dst() const { return nodes.back(); }
};

class PathSelector {
 public:
  explicit PathSelector(const Graph& graph,
                        CostModel model = CostModel::kHopCount);

  const Graph& graph() const noexcept { return graph_; }
  CostModel model() const noexcept { return model_; }

  /// Additive weight of one edge under the active cost model.
  double edge_weight(std::size_t edge) const;

  /// Cheapest path, or nullopt when src and dst are not connected.
  /// Throws std::invalid_argument for out-of-range ids or src == dst.
  std::optional<Path> shortest(std::uint32_t src, std::uint32_t dst) const;

  /// The k cheapest simple paths in nondecreasing cost order (fewer if
  /// the graph has fewer). Deterministic: ties break on node order.
  std::vector<Path> k_shortest(std::uint32_t src, std::uint32_t dst,
                               std::size_t k) const;

  /// As k_shortest, but no returned path uses any edge in
  /// `excluded_edges` — the re-routing search over a request's
  /// exclusion set (see Router). Unknown edge ids throw
  /// std::invalid_argument.
  std::vector<Path> k_shortest(std::uint32_t src, std::uint32_t dst,
                               std::size_t k,
                               std::span<const std::size_t> excluded_edges)
      const;

  /// Expected end-to-end fidelity of delivering over `path`: per-edge
  /// Werner states at EdgeParams::fidelity composed hop by hop through
  /// the Bell-diagonal swap algebra (exact for Werner inputs; the swap
  /// corrections make every measurement branch equivalent).
  static double estimated_fidelity(const Graph& graph, const Path& path);

  /// Expected latency proxy of `path`: sum of per-edge generation times
  /// plus the classical announcement delays (see kLatency above).
  static double estimated_latency_s(const Graph& graph, const Path& path);

 private:
  std::optional<Path> dijkstra(std::uint32_t src, std::uint32_t dst,
                               const std::vector<bool>& banned_nodes,
                               const std::vector<bool>& banned_edges) const;
  std::vector<Path> yen(std::uint32_t src, std::uint32_t dst, std::size_t k,
                        const std::vector<bool>& excluded) const;

  const Graph& graph_;
  CostModel model_;
};

}  // namespace qlink::routing
