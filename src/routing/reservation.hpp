#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <vector>

#include "routing/graph.hpp"
#include "sim/time.hpp"

/// \file reservation.hpp
/// Time-sliced per-edge admission for concurrent end-to-end requests.
///
/// Every admitted request holds a *lease* on each edge of its path: a
/// time window sized from the request's estimated occupancy (the
/// routing layer derives it from the FEU-estimated hop pair times of
/// `core::Link::estimate_k_create`; see Router::lease_duration).
/// A lease occupies [start, end): admission for a window counts only
/// leases *overlapping* that window against EdgeParams::capacity, so
/// two requests sharing an edge at disjoint times both admit. A lease
/// ending at kNoExpiry never lapses — whole-request pinning (the
/// historical behavior, and the default when no duration is given) is
/// the infinite-lease special case.
///
/// Deferred admission (ISSUE 5) books windows that start in the
/// *future*: `earliest_window` computes the first start >= now at which
/// every listed edge has a free slot for the whole duration, and
/// `reserve_at` leases it. Instant admissions (`try_reserve`) check
/// their own window [now, now + duration), so they cannot quietly
/// overlap a booked future window.
///
/// A lapsed lease does NOT release its ticket: the holder may overrun
/// its estimate and still owns its qubits; expiry merely stops the edge
/// counting against capacity, time-slicing the edge optimistically
/// (per-edge capacity is a routing admission policy, not a hardware
/// invariant — the EGP multiplexes concurrent CREATEs on one link).
/// release() always wins: it drops whatever lease entries remain.
///
/// Requests that do not fit queue FIFO as retry callbacks, retried on
/// every release *and* on lease expiry (the caller drives expiry via
/// expire_until / next_expiry — the table knows durations, not clocks).
/// The drain is a batch pass over the whole queue: every sweep retries
/// a snapshot in queue order and re-queues the still-blocked ones, in
/// order, ahead of anything enqueued mid-sweep, so a still-blocked head
/// never starves later requests whose edges are free ("batch
/// admission": disjoint corridors admit in one wakeup). Under
/// DrainPolicy::kPerEdgeFifo the sweep additionally refuses to retry an
/// entry whose declared edge footprint intersects an earlier entry that
/// is still blocked this sweep — FIFO is preserved *per conflicting
/// edge set* (a younger request cannot jump an older one on a shared
/// edge) while disjoint requests stay unordered. Under the historical
/// kGreedy policy such jumps are allowed and counted (`steals`).

namespace qlink::metrics {
class EdgeStats;
}

namespace qlink::routing {

/// How the blocked-queue drain orders conflicting retries; see the file
/// comment. kGreedy is the historical (PR-4) behavior.
enum class DrainPolicy { kGreedy, kPerEdgeFifo };

class ReservationTable {
 public:
  using Ticket = std::uint64_t;
  /// A blocked request's retry hook: return true once the request left
  /// the blocked state (admitted or abandoned), false to stay queued.
  using RetryFn = std::function<bool()>;

  /// Lease end meaning "never lapses" (whole-request pinning).
  static constexpr sim::SimTime kNoExpiry =
      std::numeric_limits<sim::SimTime>::max();

  /// Capacities are snapshotted from the graph's EdgeParams here; later
  /// edits to the graph do not change admission (rebuild the Router /
  /// table to apply a new capacity plan).
  explicit ReservationTable(const Graph& graph);

  void set_drain_policy(DrainPolicy policy) noexcept { policy_ = policy; }
  DrainPolicy drain_policy() const noexcept { return policy_; }

  /// Attach a per-edge accounting substrate (null to detach). The table
  /// reports lease placements/releases and blocked-arrival footprints;
  /// the substrate only records (no events, no randomness), so
  /// attaching one cannot perturb a trajectory (ISSUE 8).
  void set_edge_stats(metrics::EdgeStats* stats) noexcept {
    edge_stats_ = stats;
  }

  /// Whether every listed edge has spare capacity over the whole window
  /// [now, now + duration). The default duration degenerates to the
  /// historical instant check ("busy at `now`") when no future windows
  /// are booked.
  bool can_reserve(std::span<const std::size_t> edges, sim::SimTime now = 0,
                   sim::SimTime duration = kNoExpiry) const;

  /// Atomically lease all listed edges for [now, now + duration);
  /// nullopt (and no change) when any of them lacks a free slot over
  /// that window. Throws std::invalid_argument for an empty or
  /// non-simple path (a repeated edge would over-subscribe capacity),
  /// unknown edge ids, or a non-positive duration.
  std::optional<Ticket> try_reserve(std::span<const std::size_t> edges,
                                    sim::SimTime now = 0,
                                    sim::SimTime duration = kNoExpiry);

  /// Book a *future* window: lease all listed edges for
  /// [start, start + duration), or nullopt when any edge lacks a free
  /// slot over that window. Validation as try_reserve (plus a negative
  /// start throws). Deferred admission computes `start` with
  /// earliest_window and books it here in the same event, so the pair
  /// is effectively atomic.
  std::optional<Ticket> reserve_at(std::span<const std::size_t> edges,
                                   sim::SimTime start, sim::SimTime duration);

  /// Earliest start >= now at which every listed edge has a free slot
  /// for the whole duration, or nullopt when no finite window exists
  /// (an edge saturated by never-lapsing pins). Candidate starts are
  /// `now` and the finite ends of current leases on the listed edges —
  /// the points where an edge's occupancy can drop.
  std::optional<sim::SimTime> earliest_window(
      std::span<const std::size_t> edges, sim::SimTime now,
      sim::SimTime duration) const;

  /// Release a reservation (dropping any lease entries that have not
  /// lapsed yet) and retry the blocked queue. Unknown tickets throw
  /// std::invalid_argument (double release is a caller bug). A
  /// non-negative `now` lets per-edge accounting truncate the lease
  /// windows at the actual release time (negative = time unknown, keep
  /// the scheduled ends — the historical signature).
  void release(Ticket ticket, sim::SimTime now = -1);

  /// Queue a blocked request for retry on the next release or expiry.
  /// `footprint` (optional) declares the edges the request is waiting
  /// for (its preferred candidate path); the batch drain uses it for
  /// per-edge FIFO conflict ordering and steal accounting. An empty
  /// footprint opts out of both.
  void enqueue_blocked(RetryFn retry, std::vector<std::size_t> footprint = {});

  /// Drop every lease whose window ended at or before `now` and, when
  /// anything lapsed, retry the blocked queue. Returns the number of
  /// lapsed lease entries (per edge, not per ticket).
  std::size_t expire_until(sim::SimTime now);

  /// Earliest finite lease end still on the books, or nullopt when
  /// every live lease is an unbounded pin. O(1): reads the min of the
  /// expiry index kept alongside the leases (ISSUE 5 — the previous
  /// implementation scanned every lease on every Router wakeup).
  std::optional<sim::SimTime> next_expiry() const;

  /// The O(total leases) scan next_expiry used to be. Test support: the
  /// lease tests assert it always agrees with the indexed next_expiry.
  std::optional<sim::SimTime> next_expiry_scan() const;

  std::size_t capacity(std::size_t edge) const {
    return capacity_.at(edge);
  }
  /// Lease entries currently held on the edge, including booked future
  /// windows (a lapsed-but-unexpired entry still counts until
  /// expire_until or release prunes it).
  std::size_t in_use(std::size_t edge) const {
    return leases_.at(edge).size();
  }
  std::size_t active() const noexcept { return active_.size(); }
  std::size_t blocked() const noexcept { return blocked_.size(); }
  /// High-water mark of concurrently held reservations.
  std::size_t max_active() const noexcept { return max_active_; }
  /// Lease entries that lapsed before their ticket released.
  std::uint64_t lease_expiries() const noexcept { return lease_expiries_; }
  /// Admissions that jumped an older blocked request on a shared edge:
  /// a fresh out-of-queue reservation over a blocked footprint (either
  /// policy — try_reserve admits on capacity alone), or a drain retry
  /// that succeeded past a still-blocked elder (kGreedy only; the
  /// kPerEdgeFifo drain withholds those, see hol_holds).
  std::uint64_t steals() const noexcept { return steals_; }
  /// Drain retries withheld by kPerEdgeFifo because an earlier entry
  /// sharing an edge was still blocked this sweep.
  std::uint64_t hol_holds() const noexcept { return hol_holds_; }
  /// Drain admissions that happened *after* an earlier entry stayed
  /// blocked in the same sweep — disjoint corridors admitted in one
  /// wakeup instead of waiting behind the blocked head.
  std::uint64_t batch_admits() const noexcept { return batch_admits_; }

 private:
  struct Lease {
    Ticket ticket = 0;
    sim::SimTime start = 0;
    sim::SimTime end = kNoExpiry;
  };

  struct Blocked {
    RetryFn retry;
    std::vector<std::size_t> footprint;
  };

  /// Whether the edge has a free slot over [start, end).
  bool window_fits(std::size_t edge, sim::SimTime start,
                   sim::SimTime end) const;
  static sim::SimTime window_end(sim::SimTime start, sim::SimTime duration) {
    return duration >= kNoExpiry - start ? kNoExpiry : start + duration;
  }
  void validate(std::span<const std::size_t> edges,
                sim::SimTime duration) const;
  std::optional<Ticket> reserve_window(std::span<const std::size_t> edges,
                                       sim::SimTime start,
                                       sim::SimTime duration,
                                       bool count_steal);
  /// Whether any queued blocked entry's footprint intersects `edges`.
  bool conflicts_blocked(std::span<const std::size_t> edges) const;
  void drain_blocked();

  std::vector<std::size_t> capacity_;
  /// Per edge: the leases currently counting against its capacity.
  std::vector<std::vector<Lease>> leases_;
  std::map<Ticket, std::vector<std::size_t>> active_;
  std::deque<Blocked> blocked_;
  /// Min-ordered index of every finite lease end on the books (one
  /// entry per edge lease, mirroring leases_), so next_expiry is the
  /// tree minimum instead of a full scan; inserts and erases are
  /// O(log n) per lease entry.
  std::multiset<sim::SimTime> finite_ends_;
  DrainPolicy policy_ = DrainPolicy::kGreedy;
  Ticket next_ticket_ = 1;
  std::size_t max_active_ = 0;
  std::uint64_t lease_expiries_ = 0;
  std::uint64_t steals_ = 0;
  std::uint64_t hol_holds_ = 0;
  std::uint64_t batch_admits_ = 0;
  bool draining_ = false;
  bool redrain_ = false;
  metrics::EdgeStats* edge_stats_ = nullptr;
};

}  // namespace qlink::routing
