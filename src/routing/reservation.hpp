#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "routing/graph.hpp"

/// \file reservation.hpp
/// Per-request edge-capacity admission for concurrent end-to-end
/// requests.
///
/// Every admitted request holds a reservation on each edge of its path
/// for its whole lifetime (the link-layer CREATEs of all hops run
/// concurrently, so the path's resources are pinned together). With the
/// default EdgeParams::capacity of 1 this admits exactly edge-disjoint
/// paths; higher capacities model links that can serve several
/// network-layer requests at once.
///
/// Requests that do not fit queue FIFO as retry callbacks and are
/// retried whenever a reservation releases; a retry that still does not
/// fit stays queued. (The drain is one pass per release in queue order,
/// so a request freed resources can immediately be re-admitted, while a
/// still-blocked head does not starve later requests whose edges are
/// disjoint from it.)

namespace qlink::routing {

class ReservationTable {
 public:
  using Ticket = std::uint64_t;
  /// A blocked request's retry hook: return true once the request left
  /// the blocked state (admitted or abandoned), false to stay queued.
  using RetryFn = std::function<bool()>;

  /// Capacities are snapshotted from the graph's EdgeParams here; later
  /// edits to the graph do not change admission (rebuild the Router /
  /// table to apply a new capacity plan).
  explicit ReservationTable(const Graph& graph);

  /// Whether every listed edge currently has spare capacity.
  bool can_reserve(std::span<const std::size_t> edges) const;

  /// Atomically reserve all listed edges; nullopt (and no change) when
  /// any of them is at capacity. Throws std::invalid_argument for an
  /// empty or non-simple path (a repeated edge would over-subscribe
  /// capacity) or unknown edge ids.
  std::optional<Ticket> try_reserve(std::span<const std::size_t> edges);

  /// Release a reservation and retry the blocked queue. Unknown tickets
  /// throw std::invalid_argument (double release is a caller bug).
  void release(Ticket ticket);

  /// Queue a blocked request for retry on the next release.
  void enqueue_blocked(RetryFn retry);

  std::size_t capacity(std::size_t edge) const {
    return capacity_.at(edge);
  }
  std::size_t in_use(std::size_t edge) const { return in_use_.at(edge); }
  std::size_t active() const noexcept { return active_.size(); }
  std::size_t blocked() const noexcept { return blocked_.size(); }
  /// High-water mark of concurrently held reservations.
  std::size_t max_active() const noexcept { return max_active_; }

 private:
  void drain_blocked();

  std::vector<std::size_t> capacity_;
  std::vector<std::size_t> in_use_;
  std::map<Ticket, std::vector<std::size_t>> active_;
  std::deque<RetryFn> blocked_;
  Ticket next_ticket_ = 1;
  std::size_t max_active_ = 0;
  bool draining_ = false;
};

}  // namespace qlink::routing
