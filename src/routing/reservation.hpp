#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "routing/graph.hpp"
#include "sim/time.hpp"

/// \file reservation.hpp
/// Time-sliced per-edge admission for concurrent end-to-end requests.
///
/// Every admitted request holds a *lease* on each edge of its path: a
/// time window sized from the request's estimated occupancy (the
/// routing layer derives it from the FEU-estimated hop pair times of
/// `core::Link::estimate_k_create`; see Router::lease_duration).
/// Admission at time `now` counts only leases whose window still covers
/// `now` against EdgeParams::capacity, so two requests sharing an edge
/// at disjoint times both admit. A lease ending at kNoExpiry never
/// lapses — whole-request pinning (the historical behavior, and the
/// default when no duration is given) is the infinite-lease special
/// case.
///
/// A lapsed lease does NOT release its ticket: the holder may overrun
/// its estimate and still owns its qubits; expiry merely stops the edge
/// counting against capacity, time-slicing the edge optimistically
/// (per-edge capacity is a routing admission policy, not a hardware
/// invariant — the EGP multiplexes concurrent CREATEs on one link).
/// release() always wins: it drops whatever lease entries remain.
///
/// Requests that do not fit queue FIFO as retry callbacks, retried on
/// every release *and* on lease expiry (the caller drives expiry via
/// expire_until / next_expiry — the table knows durations, not clocks).
/// The drain preserves arrival order across mixed release/expiry
/// wakeups: each sweep retries a snapshot in queue order and re-queues
/// the still-blocked ones, in order, ahead of anything enqueued
/// mid-sweep. (The previous pop-front/push-back rotation could leave
/// the queue mid-rotation when a retry threw, and silently skipped
/// sweeps requested while one was already running.)

namespace qlink::routing {

class ReservationTable {
 public:
  using Ticket = std::uint64_t;
  /// A blocked request's retry hook: return true once the request left
  /// the blocked state (admitted or abandoned), false to stay queued.
  using RetryFn = std::function<bool()>;

  /// Lease end meaning "never lapses" (whole-request pinning).
  static constexpr sim::SimTime kNoExpiry =
      std::numeric_limits<sim::SimTime>::max();

  /// Capacities are snapshotted from the graph's EdgeParams here; later
  /// edits to the graph do not change admission (rebuild the Router /
  /// table to apply a new capacity plan).
  explicit ReservationTable(const Graph& graph);

  /// Whether every listed edge has spare capacity at time `now`.
  bool can_reserve(std::span<const std::size_t> edges,
                   sim::SimTime now = 0) const;

  /// Atomically lease all listed edges for [now, now + duration);
  /// nullopt (and no change) when any of them is at capacity at `now`.
  /// Throws std::invalid_argument for an empty or non-simple path (a
  /// repeated edge would over-subscribe capacity), unknown edge ids, or
  /// a non-positive duration.
  std::optional<Ticket> try_reserve(std::span<const std::size_t> edges,
                                    sim::SimTime now = 0,
                                    sim::SimTime duration = kNoExpiry);

  /// Release a reservation (dropping any lease entries that have not
  /// lapsed yet) and retry the blocked queue. Unknown tickets throw
  /// std::invalid_argument (double release is a caller bug).
  void release(Ticket ticket);

  /// Queue a blocked request for retry on the next release or expiry.
  void enqueue_blocked(RetryFn retry);

  /// Drop every lease whose window ended at or before `now` and, when
  /// anything lapsed, retry the blocked queue. Returns the number of
  /// lapsed lease entries (per edge, not per ticket).
  std::size_t expire_until(sim::SimTime now);

  /// Earliest finite lease end still on the books, or nullopt when
  /// every live lease is an unbounded pin.
  std::optional<sim::SimTime> next_expiry() const;

  std::size_t capacity(std::size_t edge) const {
    return capacity_.at(edge);
  }
  /// Lease entries currently held on the edge (a lapsed-but-unexpired
  /// entry still counts until expire_until or release prunes it).
  std::size_t in_use(std::size_t edge) const {
    return leases_.at(edge).size();
  }
  std::size_t active() const noexcept { return active_.size(); }
  std::size_t blocked() const noexcept { return blocked_.size(); }
  /// High-water mark of concurrently held reservations.
  std::size_t max_active() const noexcept { return max_active_; }
  /// Lease entries that lapsed before their ticket released.
  std::uint64_t lease_expiries() const noexcept { return lease_expiries_; }

 private:
  struct Lease {
    Ticket ticket = 0;
    sim::SimTime end = kNoExpiry;
  };

  void drain_blocked();

  std::vector<std::size_t> capacity_;
  /// Per edge: the leases currently counting against its capacity.
  std::vector<std::vector<Lease>> leases_;
  std::map<Ticket, std::vector<std::size_t>> active_;
  std::deque<RetryFn> blocked_;
  Ticket next_ticket_ = 1;
  std::size_t max_active_ = 0;
  std::uint64_t lease_expiries_ = 0;
  bool draining_ = false;
  bool redrain_ = false;
};

}  // namespace qlink::routing
