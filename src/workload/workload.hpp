#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "metrics/collector.hpp"
#include "sim/entity.hpp"

namespace qlink::netlayer {
class QuantumNetwork;
class SwapService;
}  // namespace qlink::netlayer

namespace qlink::obs {
class Monitor;
class NetState;
}  // namespace qlink::obs

namespace qlink::routing {
class Router;
}  // namespace qlink::routing

/// \file workload.hpp
/// The evaluation harness of Section 6 / Appendix C.2.
///
/// In every MHP cycle a new CREATE of kind P in {NL, CK, MD} is issued
/// with probability f_P * p_succ / (E * k), for a uniformly random
/// number of pairs k <= k_max. f_P sets the offered load relative to
/// link capacity: 0.7 = Low, 0.99 = High, 1.5 = Ultra. The driver also
/// plays the higher layer: it consumes delivered pairs (measuring their
/// true fidelity first — simulator privilege), records all metrics, and
/// releases qubits back to the memory managers.
///
/// Three modes:
///  - single-link (historical): drive one core::Link directly;
///  - end-to-end: drive a netlayer::QuantumNetwork through its
///    SwapService — every issued request asks for entanglement between
///    two nodes of the topology (the fixed-endpoint modes pick the two
///    farthest ends, so the route always crosses at least one swap),
///    and the NL KindSpec controls rate and request size;
///  - routed (multi-pair random traffic over graphs): submit through a
///    routing::Router instead of the SwapService directly, so every
///    request is path-selected under the router's cost model and
///    admitted against its reservation table (blocked requests queue
///    and retry, or book a deferred window when the router runs with
///    defer_admission; see routing/router.hpp). Each MHP cycle the
///    driver samples the scheduler backlog (blocked + deferred-pending
///    requests) into metrics::Collector::sched_backlog.

namespace qlink::workload {

/// Where CREATE requests originate (fairness axis of Section 6.2). In
/// end-to-end mode this picks the endpoint pair instead: kAllA = first
/// node to last, kAllB = last to first, kRandom = random distinct pair.
enum class OriginMode { kAllA, kAllB, kRandom };

struct KindSpec {
  double fraction = 0.0;  // f_P
  std::uint16_t k_max = 1;
};

struct WorkloadConfig {
  KindSpec nl;
  KindSpec ck;
  KindSpec md;
  OriginMode origin = OriginMode::kRandom;
  double min_fidelity = 0.64;
  sim::SimTime max_time = 0;  // tmax on requests; 0 = unbounded
  std::uint64_t seed = 7;
  /// Evict unmatched delivered pairs after this long (covers lost OKs).
  sim::SimTime stale_pair_horizon = sim::duration::milliseconds(20);
  /// End-to-end mode only: per-link CREATE fidelity floor (0 = use
  /// min_fidelity on every hop; see E2eRequest::link_min_fidelity).
  double link_min_fidelity = 0.0;
  /// Routed mode only: refresh the router's edge annotations from live
  /// FEU test-round estimates this often (0 = static annotations). See
  /// routing::Router::refresh_annotations.
  sim::SimTime annotate_refresh_interval = 0;
  /// CREATE-floor menu the periodic refresh re-annotates with
  /// (descending quality set-points — also what stale measurements
  /// decay back to).
  std::vector<double> refresh_floor_menu{0.85, 0.775, 0.7, 0.625};
  /// Minimum recorded test rounds before a link's measurements count.
  std::size_t refresh_min_rounds = 30;
  /// Staleness half-life of a measurement, seconds.
  double refresh_stale_halflife_s = 0.5;
};

/// The named usage patterns of Table 2 (Appendix C.2).
struct UsagePattern {
  std::string name;
  WorkloadConfig config;
};
UsagePattern usage_pattern(const std::string& name, double load = 0.99);

class WorkloadDriver : public sim::Entity {
 public:
  /// Single-link mode.
  WorkloadDriver(core::Link& link, const WorkloadConfig& config,
                 metrics::Collector& collector);

  /// End-to-end mode. The SwapService owns every EGP's OK/ERR stream
  /// and should have been constructed with `collector` so deliveries
  /// are recorded under Priority::kNetworkLayer; the driver issues
  /// requests, releases delivered pairs, and samples queue lengths.
  WorkloadDriver(netlayer::QuantumNetwork& network,
                 netlayer::SwapService& swap, const WorkloadConfig& config,
                 metrics::Collector& collector);

  /// Routed mode: multi-pair random traffic over a general graph. Each
  /// issued request picks its endpoints per OriginMode (kRandom: a
  /// uniformly random distinct pair) and goes through `router`, whose
  /// reservation table decides admission. The driver consumes the
  /// router's deliveries.
  WorkloadDriver(routing::Router& router, const WorkloadConfig& config,
                 metrics::Collector& collector);

  /// Begin issuing requests and consuming results.
  void start();
  void stop();

  /// Attach a live-run monitor (ISSUE 7): the driver polls it once per
  /// MHP cycle — an event that exists with or without the monitor — so
  /// interval records stream without perturbing the trajectory. The
  /// caller still owns the monitor and calls finish() after stop().
  void set_monitor(obs::Monitor* monitor) { monitor_ = monitor; }

  /// Attach a network-state sampler (ISSUE 8): polled from the same
  /// per-cycle control point as the monitor, same contract (the caller
  /// owns it and calls finish() after stop()).
  void set_netstate(obs::NetState* netstate) { netstate_ = netstate; }

  const WorkloadConfig& config() const { return config_; }
  std::uint64_t requests_issued() const { return issued_; }
  std::uint64_t pairs_matched() const { return matched_; }

 private:
  struct PendingPair {
    std::optional<core::OkMessage> ok_a;
    std::optional<core::OkMessage> ok_b;
    sim::SimTime first_seen = 0;
  };

  /// The link whose FEU/herald model calibrates issue probabilities
  /// (the only link in single-link mode, link 0 otherwise).
  core::Link& ref_link();

  /// Single-link mode: 0 for the A side, 1 for the B side (node ids
  /// are configurable and must not index kind_by_create_ directly).
  std::size_t side_index(std::uint32_t node_id) {
    return node_id == link_->node_id_a() ? 0 : 1;
  }

  /// Draw a request size k and apply the per-cycle rate throttle
  /// (base / k); 0 means "issue nothing this cycle". Shared by the
  /// single-link and end-to-end issue paths so their load calibration
  /// stays identical.
  std::uint16_t throttled_request_size(double base, std::uint16_t k_max);

  void on_cycle();
  void maybe_refresh_annotations();
  void maybe_issue(core::Priority kind, const KindSpec& spec);
  void maybe_issue_e2e();
  void on_ok(std::uint32_t node, const core::OkMessage& ok);
  void on_err(std::uint32_t node, const core::ErrMessage& err);
  void consume(const PendingPair& pair);
  void sweep_stale();
  double issue_probability(core::Priority kind, const KindSpec& spec);

  core::Link* link_ = nullptr;               // single-link mode
  netlayer::QuantumNetwork* net_ = nullptr;  // end-to-end mode
  netlayer::SwapService* swap_ = nullptr;
  routing::Router* router_ = nullptr;        // routed mode
  obs::Monitor* monitor_ = nullptr;          // polled each cycle
  obs::NetState* netstate_ = nullptr;        // polled each cycle
  WorkloadConfig config_;
  metrics::Collector& collector_;
  sim::Random random_;
  sim::PeriodicTimer timer_;
  std::map<std::uint32_t, PendingPair> pending_;  // by ent_id.seq_mhp
  std::map<std::uint32_t, core::Priority> kind_by_create_[2];
  std::uint64_t issued_ = 0;
  std::uint64_t matched_ = 0;
  std::optional<sim::SimTime> last_refresh_;
  std::array<std::optional<double>, 2> cached_p_succ_{};  // per type K/M
};

}  // namespace qlink::workload
