#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "metrics/collector.hpp"
#include "sim/entity.hpp"
#include "workload/arrival.hpp"

namespace qlink::netlayer {
class EntanglementPlane;
class QuantumNetwork;
class SwapService;
}  // namespace qlink::netlayer

namespace qlink::obs {
class Monitor;
class NetState;
}  // namespace qlink::obs

namespace qlink::routing {
class Router;
}  // namespace qlink::routing

/// \file workload.hpp
/// The traffic engine: offered load in, consumed deliveries out.
///
/// Two traffic generators share one driver core:
///
///  - the per-cycle Bernoulli issue of Section 6 / Appendix C.2 (the
///    historical mode): every MHP cycle a new CREATE of kind
///    P in {NL, CK, MD} is issued with probability f_P * p_succ /
///    (E * k) for a uniformly random k <= k_max — f_P sets the offered
///    load relative to link capacity (0.7 = Low, 0.99 = High,
///    1.5 = Ultra);
///  - an ArrivalProcess (workload/arrival.hpp): Poisson / bursty
///    on/off / diurnal / per-class mixes streaming requests with O(1)
///    heap state per in-flight request — the million-request mode.
///
/// Three plumbing modes, built through the named factories:
///
///  - for_link: drive one core::Link directly (the historical
///    single-link harness);
///  - for_e2e: drive a netlayer::QuantumNetwork through its
///    SwapService — every request asks for entanglement between two
///    nodes of the topology;
///  - for_routed: submit through a routing::Router, so every request
///    is path-selected and admitted against its reservation table.
///    Works over either plane: the full-detail SwapService or the
///    flow-level netlayer::FlowPlane (which is how
///    bench_workload_scale reaches 1M+ requests).
///
/// In every mode the driver also plays the higher layer: it consumes
/// delivered pairs, records all metrics, releases resources, and polls
/// any attached Monitor/NetState from its cycle event.

namespace qlink::workload {

/// Where CREATE requests originate (fairness axis of Section 6.2). In
/// end-to-end mode this picks the endpoint pair instead: kAllA = first
/// node to last, kAllB = last to first, kRandom = random distinct pair.
enum class OriginMode { kAllA, kAllB, kRandom };

struct KindSpec {
  double fraction = 0.0;  // f_P
  std::uint16_t k_max = 1;
};

/// Traffic shape: what the offered load looks like. (The API split of
/// ISSUE 9 — shape here, plumbing in DriverConfig.)
struct TrafficConfig {
  KindSpec nl;
  KindSpec ck;
  KindSpec md;
  OriginMode origin = OriginMode::kRandom;
  double min_fidelity = 0.64;
  sim::SimTime max_time = 0;  // tmax on requests; 0 = unbounded
  /// End-to-end modes only: per-link CREATE fidelity floor (0 = use
  /// min_fidelity on every hop; see E2eRequest::link_min_fidelity).
  double link_min_fidelity = 0.0;
  /// When set, requests arrive through this process instead of the
  /// per-cycle Bernoulli issue (end-to-end and routed modes only).
  /// Shared so one shape can drive many runs.
  std::shared_ptr<ArrivalProcess> arrivals;
};

/// Plumbing: seeds, polling cadence, annotation refresh. Nothing here
/// changes what the traffic asks for.
struct DriverConfig {
  std::uint64_t seed = 7;
  /// Evict unmatched delivered pairs after this long (covers lost OKs).
  sim::SimTime stale_pair_horizon = sim::duration::milliseconds(20);
  /// Control-loop cadence (monitor/netstate polls, queue/backlog
  /// samples, refresh checks, Bernoulli issue). 0 = the reference
  /// link's MHP cycle, or 10 us when no full-detail link exists
  /// (routed mode over a flow plane).
  sim::SimTime poll_interval = 0;
  /// Arrival mode: stop issuing after this many requests (0 =
  /// unlimited — issue until stop()).
  std::uint64_t max_requests = 0;
  /// Routed mode only: refresh the router's edge annotations from live
  /// FEU test-round estimates this often (0 = static annotations). See
  /// routing::Router::refresh_annotations.
  sim::SimTime annotate_refresh_interval = 0;
  /// CREATE-floor menu the periodic refresh re-annotates with
  /// (descending quality set-points — also what stale measurements
  /// decay back to).
  std::vector<double> refresh_floor_menu{0.85, 0.775, 0.7, 0.625};
  /// Minimum recorded test rounds before a link's measurements count.
  std::size_t refresh_min_rounds = 30;
  /// Staleness half-life of a measurement, seconds.
  double refresh_stale_halflife_s = 0.5;
};

/// Convenience aggregate: the union of TrafficConfig and DriverConfig
/// with the historical field names, split by traffic()/tuning() at the
/// factory call (the constructor shims that used to take it whole were
/// removed in ISSUE 10). usage_pattern() returns one.
struct WorkloadConfig {
  KindSpec nl;
  KindSpec ck;
  KindSpec md;
  OriginMode origin = OriginMode::kRandom;
  double min_fidelity = 0.64;
  sim::SimTime max_time = 0;
  std::uint64_t seed = 7;
  sim::SimTime stale_pair_horizon = sim::duration::milliseconds(20);
  double link_min_fidelity = 0.0;
  sim::SimTime annotate_refresh_interval = 0;
  std::vector<double> refresh_floor_menu{0.85, 0.775, 0.7, 0.625};
  std::size_t refresh_min_rounds = 30;
  double refresh_stale_halflife_s = 0.5;

  TrafficConfig traffic() const;
  DriverConfig tuning() const;
};

/// The named usage patterns of Table 2 (Appendix C.2).
struct UsagePattern {
  std::string name;
  WorkloadConfig config;
};
UsagePattern usage_pattern(const std::string& name, double load = 0.99);

class WorkloadDriver : public sim::Entity {
 public:
  /// Single-link mode (the historical harness). ArrivalProcess traffic
  /// is not supported here (std::invalid_argument): link-layer CREATEs
  /// follow the paper's per-cycle issue model.
  static std::unique_ptr<WorkloadDriver> for_link(
      core::Link& link, const TrafficConfig& traffic,
      const DriverConfig& tuning, metrics::Collector& collector);

  /// End-to-end mode. The SwapService owns every EGP's OK/ERR stream
  /// and should have been constructed with `collector` so deliveries
  /// are recorded under Priority::kNetworkLayer; the driver issues
  /// requests, releases delivered pairs, and samples queue lengths.
  static std::unique_ptr<WorkloadDriver> for_e2e(
      netlayer::QuantumNetwork& network, netlayer::SwapService& swap,
      const TrafficConfig& traffic, const DriverConfig& tuning,
      metrics::Collector& collector);

  /// Routed mode: traffic over a general graph through `router`, whose
  /// reservation table decides admission. Works over either
  /// entanglement plane; a flow-plane router requires ArrivalProcess
  /// traffic (the Bernoulli issue calibrates against full-detail
  /// hardware the flow plane does not carry).
  static std::unique_ptr<WorkloadDriver> for_routed(
      routing::Router& router, const TrafficConfig& traffic,
      const DriverConfig& tuning, metrics::Collector& collector);

  /// Begin issuing requests and consuming results.
  void start();
  void stop();

  /// Attach a live-run monitor (ISSUE 7): the driver polls it once per
  /// control cycle — an event that exists with or without the monitor —
  /// so interval records stream without perturbing the trajectory. The
  /// caller still owns the monitor and calls finish() after stop().
  void set_monitor(obs::Monitor* monitor) { monitor_ = monitor; }

  /// Attach a network-state sampler (ISSUE 8): polled from the same
  /// per-cycle control point as the monitor, same contract (the caller
  /// owns it and calls finish() after stop()).
  void set_netstate(obs::NetState* netstate) { netstate_ = netstate; }

  const TrafficConfig& traffic() const { return traffic_; }
  const DriverConfig& tuning() const { return tuning_; }
  std::uint64_t requests_issued() const { return issued_; }
  std::uint64_t pairs_matched() const { return matched_; }

 private:
  struct PendingPair {
    std::optional<core::OkMessage> ok_a;
    std::optional<core::OkMessage> ok_b;
    sim::SimTime first_seen = 0;
  };

  /// How the driver is plumbed into the system (filled by the
  /// factories; exactly one mode's fields are set).
  struct Wiring {
    core::Link* link = nullptr;
    netlayer::QuantumNetwork* net = nullptr;
    netlayer::EntanglementPlane* plane = nullptr;
    netlayer::SwapService* swap = nullptr;
    routing::Router* router = nullptr;
    sim::Simulator* simulator = nullptr;
    const char* name = "workload";
  };

  WorkloadDriver(const Wiring& wiring, TrafficConfig traffic,
                 DriverConfig tuning, metrics::Collector& collector);

  /// The link whose FEU/herald model calibrates issue probabilities
  /// (the only link in single-link mode, link 0 otherwise).
  core::Link& ref_link();

  /// Single-link mode: 0 for the A side, 1 for the B side (node ids
  /// are configurable and must not index kind_by_create_ directly).
  std::size_t side_index(std::uint32_t node_id) {
    return node_id == link_->node_id_a() ? 0 : 1;
  }

  /// Draw a request size k and apply the per-cycle rate throttle
  /// (base / k); 0 means "issue nothing this cycle". Shared by the
  /// single-link and end-to-end issue paths so their load calibration
  /// stays identical.
  std::uint16_t throttled_request_size(double base, std::uint16_t k_max);

  /// Endpoint pair for an end-to-end request under OriginMode.
  std::pair<std::uint32_t, std::uint32_t> pick_endpoints();
  std::size_t e2e_num_nodes() const;

  void on_cycle();
  void maybe_refresh_annotations();
  void maybe_issue(core::Priority kind, const KindSpec& spec);
  void maybe_issue_e2e();
  /// Arrival mode: issue the request the process shaped, then schedule
  /// the next arrival.
  void on_arrival();
  void schedule_next_arrival();
  void issue_shaped(const RequestShape& shape);
  void on_ok(std::uint32_t node, const core::OkMessage& ok);
  void on_err(std::uint32_t node, const core::ErrMessage& err);
  void consume(const PendingPair& pair);
  void sweep_stale();
  double issue_probability(core::Priority kind, const KindSpec& spec);

  core::Link* link_ = nullptr;               // single-link mode
  netlayer::QuantumNetwork* net_ = nullptr;  // full-detail e2e plumbing
  netlayer::EntanglementPlane* plane_ = nullptr;  // e2e + routed modes
  netlayer::SwapService* swap_ = nullptr;    // e2e mode (direct submit)
  routing::Router* router_ = nullptr;        // routed mode
  obs::Monitor* monitor_ = nullptr;          // polled each cycle
  obs::NetState* netstate_ = nullptr;        // polled each cycle
  TrafficConfig traffic_;
  DriverConfig tuning_;
  metrics::Collector& collector_;
  sim::Random random_;
  sim::PeriodicTimer timer_;
  std::optional<sim::EventId> arrival_event_;
  std::map<std::uint32_t, PendingPair> pending_;  // by ent_id.seq_mhp
  std::map<std::uint32_t, core::Priority> kind_by_create_[2];
  std::uint64_t issued_ = 0;
  std::uint64_t matched_ = 0;
  std::optional<sim::SimTime> last_refresh_;
  std::array<std::optional<double>, 2> cached_p_succ_{};  // per type K/M
};

}  // namespace qlink::workload
