#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"

/// \file arrival.hpp
/// Traffic-shape library for the workload engine: when do requests
/// arrive, and what does each one ask for.
///
/// An ArrivalProcess is a deterministic pure function of
/// (Random&, now): given the shared random source and the current
/// simulation time it returns the next arrival instant (strictly
/// after now). It holds no mutable state of its own — burst phases
/// and diurnal position are derived from `now`, never stored — so the
/// same seed replays the same arrival train regardless of who else
/// shares the Random, and a process can be swapped mid-run without
/// losing its place. The driver keeps exactly one pending arrival
/// event on the heap (O(1) heap state however high the offered rate).

namespace qlink::workload {

/// What one arrival asks for. The driver fills endpoints according to
/// its OriginMode unless the class pins them via `endpoints`.
struct RequestShape {
  std::uint16_t num_pairs = 1;
  /// End-to-end fidelity target; 0 = use the traffic default.
  double min_fidelity = 0.0;
  /// Pinned (src, dst) endpoint pool: when non-empty, each arrival of
  /// this class picks one pair uniformly. Empty = driver's OriginMode.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> endpoints;
  /// Class label for reporting (unused by the engine itself).
  std::string name;
};

class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;

  /// The next arrival instant, strictly after `now`. Must consume the
  /// same number of random draws for the same (seed, now) so seeded
  /// trajectories replay byte-identically.
  virtual sim::SimTime next_arrival(sim::Random& random,
                                    sim::SimTime now) const = 0;

  /// What the arrival at `now` asks for. The base process issues the
  /// default shape; class mixes override.
  virtual RequestShape sample_shape(sim::Random& random,
                                    sim::SimTime now) const {
    (void)random;
    (void)now;
    return RequestShape{};
  }

  /// Mean offered rate (requests per simulated second), for reporting
  /// and run sizing.
  virtual double mean_rate_hz() const = 0;
};

/// Poisson arrivals: exponential inter-arrival times at `rate_hz`.
class PoissonProcess : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate_hz) : rate_hz_(rate_hz) {
    if (rate_hz <= 0.0) {
      throw std::invalid_argument("PoissonProcess: rate must be positive");
    }
  }

  sim::SimTime next_arrival(sim::Random& random,
                            sim::SimTime now) const override {
    const double gap_s = random.exponential(1.0 / rate_hz_);
    return now + std::max<sim::SimTime>(sim::duration::seconds(gap_s), 1);
  }

  double mean_rate_hz() const override { return rate_hz_; }

 private:
  double rate_hz_;
};

/// Bursty on/off arrivals: a deterministic square wave of period
/// `on_s + off_s` (phase derived from `now`, anchored at t = 0).
/// During ON windows arrivals are Poisson at `rate_hz`; draws that
/// land in an OFF window are pushed past it, so the duty cycle is
/// exact however long the run.
class OnOffProcess : public ArrivalProcess {
 public:
  OnOffProcess(double rate_hz, double on_s, double off_s)
      : rate_hz_(rate_hz),
        on_(sim::duration::seconds(on_s)),
        off_(sim::duration::seconds(off_s)) {
    if (rate_hz <= 0.0 || on_ <= 0 || off_ < 0) {
      throw std::invalid_argument("OnOffProcess: bad rate or window");
    }
  }

  sim::SimTime next_arrival(sim::Random& random,
                            sim::SimTime now) const override {
    const sim::SimTime period = on_ + off_;
    // Remaining ON budget: one exponential draw, spent across however
    // many ON windows it takes (OFF time does not consume budget).
    sim::SimTime budget = std::max<sim::SimTime>(
        sim::duration::seconds(random.exponential(1.0 / rate_hz_)), 1);
    sim::SimTime t = now;
    while (true) {
      const sim::SimTime phase = t % period;
      if (phase >= on_) {
        t += period - phase;  // inside OFF: skip to the next window
        continue;
      }
      const sim::SimTime window_left = on_ - phase;
      if (budget <= window_left) return t + budget;
      budget -= window_left;
      t += window_left;  // now at the OFF boundary; loop skips it
    }
  }

  double mean_rate_hz() const override {
    return rate_hz_ * sim::to_seconds(on_) / sim::to_seconds(on_ + off_);
  }

 private:
  double rate_hz_;
  sim::SimTime on_;
  sim::SimTime off_;
};

/// Diurnal-modulated Poisson arrivals: instantaneous rate
/// rate_hz * (1 + depth * sin(2*pi * now / period)) via thinning
/// against the peak rate — each candidate gap is drawn at the peak and
/// accepted with probability rate(t)/peak, which is exact and keeps
/// the process a pure function of now.
class DiurnalProcess : public ArrivalProcess {
 public:
  DiurnalProcess(double rate_hz, double period_s, double depth = 0.5)
      : rate_hz_(rate_hz), period_s_(period_s), depth_(depth) {
    if (rate_hz <= 0.0 || period_s <= 0.0 || depth < 0.0 || depth > 1.0) {
      throw std::invalid_argument("DiurnalProcess: bad rate/period/depth");
    }
  }

  sim::SimTime next_arrival(sim::Random& random,
                            sim::SimTime now) const override;

  double mean_rate_hz() const override { return rate_hz_; }

 private:
  double rate_hz_;
  double period_s_;
  double depth_;
};

/// Weighted per-user-class mix over an inner arrival process: arrival
/// *times* come from the inner process; each arrival then draws a
/// class by weight and takes its shape (pairs, fidelity target,
/// pinned endpoint pool).
class ClassMixProcess : public ArrivalProcess {
 public:
  struct Class {
    double weight = 1.0;
    RequestShape shape;
  };

  ClassMixProcess(std::shared_ptr<ArrivalProcess> inner,
                  std::vector<Class> classes);

  sim::SimTime next_arrival(sim::Random& random,
                            sim::SimTime now) const override {
    return inner_->next_arrival(random, now);
  }

  RequestShape sample_shape(sim::Random& random,
                            sim::SimTime now) const override;

  double mean_rate_hz() const override { return inner_->mean_rate_hz(); }

  const std::vector<Class>& classes() const noexcept { return classes_; }

 private:
  std::shared_ptr<ArrivalProcess> inner_;
  std::vector<Class> classes_;
  std::vector<double> weights_;
};

}  // namespace qlink::workload
