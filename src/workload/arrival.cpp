#include "workload/arrival.hpp"

#include <cmath>
#include <numbers>

namespace qlink::workload {

sim::SimTime DiurnalProcess::next_arrival(sim::Random& random,
                                          sim::SimTime now) const {
  const double peak = rate_hz_ * (1.0 + depth_);
  sim::SimTime t = now;
  while (true) {
    const double gap_s = random.exponential(1.0 / peak);
    t += std::max<sim::SimTime>(sim::duration::seconds(gap_s), 1);
    const double phase =
        2.0 * std::numbers::pi * sim::to_seconds(t) / period_s_;
    const double rate = rate_hz_ * (1.0 + depth_ * std::sin(phase));
    if (random.uniform() * peak < rate) return t;
  }
}

ClassMixProcess::ClassMixProcess(std::shared_ptr<ArrivalProcess> inner,
                                 std::vector<Class> classes)
    : inner_(std::move(inner)), classes_(std::move(classes)) {
  if (inner_ == nullptr) {
    throw std::invalid_argument("ClassMixProcess: null inner process");
  }
  if (classes_.empty()) {
    throw std::invalid_argument("ClassMixProcess: no classes");
  }
  weights_.reserve(classes_.size());
  double total = 0.0;
  for (const Class& c : classes_) {
    if (c.weight < 0.0) {
      throw std::invalid_argument("ClassMixProcess: negative weight");
    }
    total += c.weight;
    weights_.push_back(c.weight);
  }
  if (total <= 0.0) {
    throw std::invalid_argument("ClassMixProcess: zero total weight");
  }
}

RequestShape ClassMixProcess::sample_shape(sim::Random& random,
                                           sim::SimTime now) const {
  (void)now;
  const std::size_t i = random.discrete(weights_);
  RequestShape shape = classes_[i].shape;
  if (shape.endpoints.size() > 1) {
    const auto pick = static_cast<std::size_t>(random.uniform_int(
        0, static_cast<std::int64_t>(shape.endpoints.size()) - 1));
    shape.endpoints = {shape.endpoints[pick]};
  }
  return shape;
}

}  // namespace qlink::workload
