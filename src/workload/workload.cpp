#include "workload/workload.hpp"

#include <stdexcept>
#include <tuple>

#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "obs/monitor.hpp"
#include "obs/netstate.hpp"
#include "routing/router.hpp"

namespace qlink::workload {

using core::CreateRequest;
using core::EgpError;
using core::ErrMessage;
using core::OkMessage;
using core::Priority;
using core::RequestType;

TrafficConfig WorkloadConfig::traffic() const {
  TrafficConfig t;
  t.nl = nl;
  t.ck = ck;
  t.md = md;
  t.origin = origin;
  t.min_fidelity = min_fidelity;
  t.max_time = max_time;
  t.link_min_fidelity = link_min_fidelity;
  return t;
}

DriverConfig WorkloadConfig::tuning() const {
  DriverConfig d;
  d.seed = seed;
  d.stale_pair_horizon = stale_pair_horizon;
  d.annotate_refresh_interval = annotate_refresh_interval;
  d.refresh_floor_menu = refresh_floor_menu;
  d.refresh_min_rounds = refresh_min_rounds;
  d.refresh_stale_halflife_s = refresh_stale_halflife_s;
  return d;
}

UsagePattern usage_pattern(const std::string& name, double load) {
  WorkloadConfig c;
  auto set = [&](double fnl, std::uint16_t knl, double fck,
                 std::uint16_t kck, double fmd, std::uint16_t kmd) {
    c.nl = {load * fnl, knl};
    c.ck = {load * fck, kck};
    c.md = {load * fmd, kmd};
  };
  // Table 2 of Appendix C.2.
  if (name == "Uniform") {
    set(1.0 / 3, 1, 1.0 / 3, 1, 1.0 / 3, 1);
  } else if (name == "MoreNL") {
    set(4.0 / 6, 3, 1.0 / 6, 3, 1.0 / 6, 255);
  } else if (name == "MoreCK") {
    set(1.0 / 6, 3, 4.0 / 6, 3, 1.0 / 6, 255);
  } else if (name == "MoreMD") {
    set(1.0 / 6, 3, 1.0 / 6, 3, 4.0 / 6, 255);
  } else if (name == "NoNLMoreCK") {
    set(0.0, 3, 4.0 / 5, 3, 1.0 / 5, 255);
  } else if (name == "NoNLMoreMD") {
    set(0.0, 3, 1.0 / 5, 3, 4.0 / 5, 255);
  } else {
    throw std::invalid_argument("usage_pattern: unknown pattern " + name);
  }
  return UsagePattern{name, c};
}

WorkloadDriver::WorkloadDriver(const Wiring& wiring, TrafficConfig traffic,
                               DriverConfig tuning,
                               metrics::Collector& collector)
    : Entity(*wiring.simulator, wiring.name),
      link_(wiring.link),
      net_(wiring.net),
      plane_(wiring.plane),
      swap_(wiring.swap),
      router_(wiring.router),
      traffic_(std::move(traffic)),
      tuning_(std::move(tuning)),
      collector_(collector),
      random_(tuning_.seed),
      timer_(
          *wiring.simulator,
          [&]() -> sim::SimTime {
            if (tuning_.poll_interval > 0) return tuning_.poll_interval;
            if (link_ != nullptr) return link_->scenario().mhp_cycle;
            if (net_ != nullptr) return net_->link(0).scenario().mhp_cycle;
            return sim::duration::microseconds(10);
          }(),
          [this] { on_cycle(); }, "workload.cycle") {
  if (link_ != nullptr) {
    if (traffic_.arrivals != nullptr) {
      throw std::invalid_argument(
          "WorkloadDriver: single-link mode has no arrival-process "
          "traffic; use the per-cycle KindSpecs");
    }
    for (std::uint32_t node : {link_->node_id_a(), link_->node_id_b()}) {
      core::Egp& egp = link_->egp(node);
      egp.set_ok_handler(
          [this, node](const OkMessage& ok) { on_ok(node, ok); });
      egp.set_err_handler(
          [this, node](const ErrMessage& err) { on_err(node, err); });
    }
    return;
  }
  if (net_ == nullptr && traffic_.arrivals == nullptr) {
    throw std::invalid_argument(
        "WorkloadDriver: a flow-plane routed driver needs an "
        "ArrivalProcess (the per-cycle issue calibrates against "
        "full-detail hardware)");
  }
  if (router_ != nullptr) {
    // The Router owns the plane's handlers; we consume the routed
    // deliveries it forwards.
    router_->set_deliver_handler([this](const netlayer::E2eOk& ok) {
      ++matched_;
      plane_->release(ok);
    });
  } else {
    // The SwapService owns the EGP OK/ERR streams; we only consume its
    // end-to-end deliveries.
    plane_->set_deliver_handler([this](const netlayer::E2eOk& ok) {
      ++matched_;
      plane_->release(ok);
    });
  }
}

std::unique_ptr<WorkloadDriver> WorkloadDriver::for_link(
    core::Link& link, const TrafficConfig& traffic,
    const DriverConfig& tuning, metrics::Collector& collector) {
  Wiring w;
  w.link = &link;
  w.simulator = &link.simulator();
  w.name = "workload";
  return std::unique_ptr<WorkloadDriver>(
      new WorkloadDriver(w, traffic, tuning, collector));
}

std::unique_ptr<WorkloadDriver> WorkloadDriver::for_e2e(
    netlayer::QuantumNetwork& network, netlayer::SwapService& swap,
    const TrafficConfig& traffic, const DriverConfig& tuning,
    metrics::Collector& collector) {
  Wiring w;
  w.net = &network;
  w.plane = &swap;
  w.swap = &swap;
  w.simulator = &network.simulator();
  w.name = "workload-e2e";
  return std::unique_ptr<WorkloadDriver>(
      new WorkloadDriver(w, traffic, tuning, collector));
}

std::unique_ptr<WorkloadDriver> WorkloadDriver::for_routed(
    routing::Router& router, const TrafficConfig& traffic,
    const DriverConfig& tuning, metrics::Collector& collector) {
  Wiring w;
  w.router = &router;
  w.plane = &router.plane();
  w.net = router.network();  // nullptr over the flow plane
  w.simulator = &router.plane().simulator();
  w.name = "workload-routed";
  return std::unique_ptr<WorkloadDriver>(
      new WorkloadDriver(w, traffic, tuning, collector));
}

void WorkloadDriver::start() {
  collector_.begin(now());
  timer_.start();
  if (traffic_.arrivals != nullptr) schedule_next_arrival();
}

void WorkloadDriver::stop() {
  timer_.stop();
  if (arrival_event_) {
    simulator().cancel(*arrival_event_);
    arrival_event_.reset();
  }
  collector_.end(now());
}

core::Link& WorkloadDriver::ref_link() {
  return link_ != nullptr ? *link_ : net_->link(0);
}

double WorkloadDriver::issue_probability(Priority kind,
                                         const KindSpec& spec) {
  if (spec.fraction <= 0.0) return 0.0;
  core::Link& link = ref_link();
  const bool is_keep = kind != Priority::kMeasureDirectly;
  const std::size_t type_idx = is_keep ? 0 : 1;
  if (!cached_p_succ_[type_idx]) {
    // In e2e mode, calibrate against the floor each hop's CREATE will
    // actually carry (see E2eRequest::effective_link_floor).
    netlayer::E2eRequest floor_probe;
    floor_probe.min_fidelity = traffic_.min_fidelity;
    floor_probe.link_min_fidelity = traffic_.link_min_fidelity;
    double floor = link_ == nullptr ? floor_probe.effective_link_floor()
                                    : traffic_.min_fidelity;
    // Routed mode: the router operates every link at its annotated
    // CREATE floor, so calibrate against the reference link's actual
    // set-point — probing a degraded link at a floor its hardware
    // cannot support would read as infeasible and silently zero the
    // offered load.
    if (router_ != nullptr) {
      const double annotated = router_->graph().params(0).link_floor;
      if (annotated > 0.0) floor = annotated;
    }
    const auto advice = link.egp_a().feu().advise(
        floor,
        is_keep ? RequestType::kCreateKeep : RequestType::kCreateMeasure);
    cached_p_succ_[type_idx] =
        advice.feasible
            ? link.herald_model().distribution(advice.alpha, advice.alpha)
                  .p_success()
            : 0.0;
  }
  const double p_succ = *cached_p_succ_[type_idx];
  // E: expected MHP cycles per attempt (Section 6: ~1 for M, the REPLY
  // round trip and carbon-refresh overhead for K).
  double e_cycles = 1.0;
  if (is_keep) {
    const auto& feu = link.egp_a().feu();
    const auto& nv = link.scenario().nv;
    const double refresh =
        static_cast<double>(nv.carbon_refresh_duration) /
        static_cast<double>(nv.carbon_refresh_interval);
    e_cycles = static_cast<double>(feu.k_attempt_period_cycles()) /
               (1.0 - refresh);
  }
  return spec.fraction * p_succ / e_cycles;  // per pair; /k applied later
}

void WorkloadDriver::maybe_refresh_annotations() {
  if (router_ == nullptr || tuning_.annotate_refresh_interval <= 0) return;
  if (last_refresh_ &&
      now() - *last_refresh_ < tuning_.annotate_refresh_interval) {
    return;
  }
  routing::RefreshOptions options;
  options.floor_menu = tuning_.refresh_floor_menu;
  options.min_rounds = tuning_.refresh_min_rounds;
  options.stale_halflife_s = tuning_.refresh_stale_halflife_s;
  router_->refresh_annotations(options);
  last_refresh_ = now();
}

void WorkloadDriver::on_cycle() {
  if (monitor_ != nullptr) monitor_->poll();
  if (netstate_ != nullptr) netstate_->poll();
  if (plane_ != nullptr) {
    // Stale-pair eviction lives in the plane here; pending_ is only
    // populated in single-link mode.
    maybe_refresh_annotations();
    if (traffic_.arrivals == nullptr) maybe_issue_e2e();
    if (net_ != nullptr) {
      std::size_t queued = 0;
      for (std::size_t i = 0; i < net_->num_links(); ++i) {
        queued += net_->link(i).egp_a().queue().total_size();
      }
      collector_.sample_queue_length(queued);
    }
    if (router_ != nullptr) {
      // Scheduler occupancy: requests parked blind in the blocked queue
      // plus deferred bookings waiting for their window to open.
      collector_.sample_sched_backlog(
          router_->reservations().blocked() + router_->deferred_pending());
    }
    return;
  }
  maybe_issue(Priority::kNetworkLayer, traffic_.nl);
  maybe_issue(Priority::kCreateKeep, traffic_.ck);
  maybe_issue(Priority::kMeasureDirectly, traffic_.md);
  sweep_stale();
  collector_.sample_queue_length(link_->egp_a().queue().total_size());
}

std::uint16_t WorkloadDriver::throttled_request_size(double base,
                                                     std::uint16_t k_max) {
  if (base <= 0.0) return 0;
  const auto k = static_cast<std::uint16_t>(
      random_.uniform_int(1, std::max<std::uint16_t>(k_max, 1)));
  return random_.bernoulli(base / static_cast<double>(k)) ? k : 0;
}

std::size_t WorkloadDriver::e2e_num_nodes() const {
  if (net_ != nullptr) return net_->num_nodes();
  return router_->graph().num_nodes();
}

std::pair<std::uint32_t, std::uint32_t> WorkloadDriver::pick_endpoints() {
  const auto last = static_cast<std::uint32_t>(e2e_num_nodes() - 1);
  // In a star, node 0 is the center: the "first" end is leaf 1 so that
  // fixed-endpoint runs actually traverse a swap at the center. (Only
  // the built-in shapes have a distinguished center; edge-list
  // topologies use plain node 0.)
  const std::uint32_t first =
      net_ != nullptr && net_->config().edges.empty() &&
              net_->config().kind == netlayer::TopologyKind::kStar &&
              last > 1
          ? 1
          : 0;
  std::uint32_t src = first;
  std::uint32_t dst = last;
  switch (traffic_.origin) {
    case OriginMode::kAllA:
      break;
    case OriginMode::kAllB:
      std::swap(src, dst);
      break;
    case OriginMode::kRandom: {
      src = static_cast<std::uint32_t>(random_.uniform_int(0, last));
      dst = static_cast<std::uint32_t>(random_.uniform_int(0, last - 1));
      if (dst >= src) ++dst;  // uniform over distinct pairs
      break;
    }
  }
  return {src, dst};
}

void WorkloadDriver::maybe_issue_e2e() {
  const double base = issue_probability(Priority::kNetworkLayer, traffic_.nl);
  const std::uint16_t k = throttled_request_size(base, traffic_.nl.k_max);
  if (k == 0) return;

  const auto [src, dst] = pick_endpoints();
  netlayer::E2eRequest req;
  req.src = src;
  req.dst = dst;
  req.num_pairs = k;
  req.min_fidelity = traffic_.min_fidelity;
  req.link_min_fidelity = traffic_.link_min_fidelity;
  req.max_time = traffic_.max_time;
  if (router_ != nullptr) {
    router_->submit(req);  // admission (or queueing) is the router's call
  } else {
    swap_->request(req);
  }
  ++issued_;
}

void WorkloadDriver::schedule_next_arrival() {
  if (tuning_.max_requests > 0 && issued_ >= tuning_.max_requests) return;
  const sim::SimTime at = traffic_.arrivals->next_arrival(random_, now());
  arrival_event_ = schedule_at(
      at,
      [this] {
        arrival_event_.reset();
        on_arrival();
      },
      "workload.arrival");
}

void WorkloadDriver::on_arrival() {
  // Draw order is part of the seeded contract: the arrival's shape
  // first, then the gap to the next arrival.
  issue_shaped(traffic_.arrivals->sample_shape(random_, now()));
  schedule_next_arrival();
}

void WorkloadDriver::issue_shaped(const RequestShape& shape) {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  if (!shape.endpoints.empty()) {
    std::tie(src, dst) = shape.endpoints.front();
  } else {
    std::tie(src, dst) = pick_endpoints();
  }
  netlayer::E2eRequest req;
  req.src = src;
  req.dst = dst;
  req.num_pairs = std::max<std::uint16_t>(shape.num_pairs, 1);
  req.min_fidelity =
      shape.min_fidelity > 0.0 ? shape.min_fidelity : traffic_.min_fidelity;
  req.link_min_fidelity = traffic_.link_min_fidelity;
  req.max_time = traffic_.max_time;
  if (router_ != nullptr) {
    router_->submit(req);
  } else {
    swap_->request(req);
  }
  ++issued_;
}

void WorkloadDriver::maybe_issue(Priority kind, const KindSpec& spec) {
  const double base = issue_probability(kind, spec);
  const std::uint16_t k = throttled_request_size(base, spec.k_max);
  if (k == 0) return;

  std::uint32_t origin = link_->node_id_a();
  switch (traffic_.origin) {
    case OriginMode::kAllA:
      origin = link_->node_id_a();
      break;
    case OriginMode::kAllB:
      origin = link_->node_id_b();
      break;
    case OriginMode::kRandom:
      origin = random_.bernoulli(0.5) ? link_->node_id_b()
                                      : link_->node_id_a();
      break;
  }

  CreateRequest req;
  req.remote_node_id = origin == link_->node_id_a() ? link_->node_id_b()
                                                    : link_->node_id_a();
  req.num_pairs = k;
  req.min_fidelity = traffic_.min_fidelity;
  req.max_time = traffic_.max_time;
  req.priority = kind;
  req.consecutive = true;  // Section 6: all three kinds deliver per pair
  switch (kind) {
    case Priority::kNetworkLayer:
      req.type = RequestType::kCreateKeep;
      req.store_in_memory = true;
      req.purpose_id = 1;
      break;
    case Priority::kCreateKeep:
      req.type = RequestType::kCreateKeep;
      req.store_in_memory = true;
      req.purpose_id = 2;
      break;
    case Priority::kMeasureDirectly:
      req.type = RequestType::kCreateMeasure;
      req.store_in_memory = false;
      req.purpose_id = 3;
      break;
  }

  core::Egp& egp = link_->egp(origin);
  const std::uint32_t create_id = egp.create(req);
  kind_by_create_[side_index(origin)][create_id] = kind;
  collector_.record_create(origin, create_id, kind, k, now());
  ++issued_;
}

void WorkloadDriver::on_ok(std::uint32_t node, const OkMessage& ok) {
  Priority kind = Priority::kCreateKeep;
  auto& by_create = kind_by_create_[side_index(ok.origin_node)];
  const auto it = by_create.find(ok.create_id);
  if (it != by_create.end()) kind = it->second;

  PendingPair& pending = pending_[ok.ent_id.seq_mhp];
  if (pending.first_seen == 0) pending.first_seen = now();
  (node == link_->node_id_a() ? pending.ok_a : pending.ok_b) = ok;

  // Latency/goodness metrics are defined at the requesting node.
  if (node == ok.origin_node) {
    std::optional<double> fidelity;
    if (!ok.is_measure_directly && pending.ok_a && pending.ok_b) {
      fidelity =
          link_->pair_fidelity(pending.ok_a->qubit, pending.ok_b->qubit);
    }
    collector_.record_ok(ok, kind, now(), fidelity);
    if (ok.pair_index + 1 == ok.total_pairs) {
      kind_by_create_[side_index(ok.origin_node)].erase(ok.create_id);
    }
  } else if (!ok.is_measure_directly && pending.ok_a && pending.ok_b) {
    // The origin's OK arrived first and was recorded without fidelity;
    // record it now that both halves are visible.
    collector_.kind(kind).fidelity.add(
        link_->pair_fidelity(pending.ok_a->qubit, pending.ok_b->qubit));
  }

  if (pending.ok_a && pending.ok_b) {
    consume(pending);
    pending_.erase(ok.ent_id.seq_mhp);
    ++matched_;
  }
}

void WorkloadDriver::consume(const PendingPair& pair) {
  if (pair.ok_a->is_measure_directly) {
    if (pair.ok_a->outcome >= 0 && pair.ok_b->outcome >= 0) {
      collector_.record_correlation(pair.ok_a->basis, pair.ok_a->outcome,
                                    pair.ok_b->outcome,
                                    pair.ok_a->heralded_state);
    }
    return;
  }
  link_->egp_a().release_delivered(*pair.ok_a);
  link_->egp_b().release_delivered(*pair.ok_b);
}

void WorkloadDriver::sweep_stale() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingPair& p = it->second;
    if (now() - p.first_seen > tuning_.stale_pair_horizon) {
      // The partner OK will never come (lost REPLY, later EXPIREd).
      if (p.ok_a && !p.ok_a->is_measure_directly) {
        link_->egp_a().release_delivered(*p.ok_a);
      }
      if (p.ok_b && !p.ok_b->is_measure_directly) {
        link_->egp_b().release_delivered(*p.ok_b);
      }
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void WorkloadDriver::on_err(std::uint32_t node, const ErrMessage& err) {
  (void)node;
  collector_.record_err(err);
  // A terminal ERR means no more OKs will arrive for this create; a
  // range revoke (kExpired with a nonzero seq window) can leave the
  // request running. Drop the kind mapping so it cannot accumulate.
  if (err.error != EgpError::kExpired ||
      (err.seq_low == 0 && err.seq_high == 0)) {
    kind_by_create_[side_index(err.origin_node)].erase(err.create_id);
  }
}

}  // namespace qlink::workload
