#include "workload/workload.hpp"

#include <stdexcept>

namespace qlink::workload {

using core::CreateRequest;
using core::EgpError;
using core::ErrMessage;
using core::OkMessage;
using core::Priority;
using core::RequestType;

UsagePattern usage_pattern(const std::string& name, double load) {
  WorkloadConfig c;
  auto set = [&](double fnl, std::uint16_t knl, double fck,
                 std::uint16_t kck, double fmd, std::uint16_t kmd) {
    c.nl = {load * fnl, knl};
    c.ck = {load * fck, kck};
    c.md = {load * fmd, kmd};
  };
  // Table 2 of Appendix C.2.
  if (name == "Uniform") {
    set(1.0 / 3, 1, 1.0 / 3, 1, 1.0 / 3, 1);
  } else if (name == "MoreNL") {
    set(4.0 / 6, 3, 1.0 / 6, 3, 1.0 / 6, 255);
  } else if (name == "MoreCK") {
    set(1.0 / 6, 3, 4.0 / 6, 3, 1.0 / 6, 255);
  } else if (name == "MoreMD") {
    set(1.0 / 6, 3, 1.0 / 6, 3, 4.0 / 6, 255);
  } else if (name == "NoNLMoreCK") {
    set(0.0, 3, 4.0 / 5, 3, 1.0 / 5, 255);
  } else if (name == "NoNLMoreMD") {
    set(0.0, 3, 1.0 / 5, 3, 4.0 / 5, 255);
  } else {
    throw std::invalid_argument("usage_pattern: unknown pattern " + name);
  }
  return UsagePattern{name, c};
}

WorkloadDriver::WorkloadDriver(core::Link& link, const WorkloadConfig& config,
                               metrics::Collector& collector)
    : Entity(link.simulator(), "workload"),
      link_(link),
      config_(config),
      collector_(collector),
      random_(config.seed),
      timer_(link.simulator(), link.scenario().mhp_cycle,
             [this] { on_cycle(); }) {
  for (std::uint32_t node : {core::Link::kNodeA, core::Link::kNodeB}) {
    core::Egp& egp = link_.egp(node);
    egp.set_ok_handler(
        [this, node](const OkMessage& ok) { on_ok(node, ok); });
    egp.set_err_handler(
        [this, node](const ErrMessage& err) { on_err(node, err); });
  }
}

void WorkloadDriver::start() {
  collector_.begin(now());
  timer_.start();
}

void WorkloadDriver::stop() {
  timer_.stop();
  collector_.end(now());
}

double WorkloadDriver::issue_probability(Priority kind,
                                         const KindSpec& spec) {
  if (spec.fraction <= 0.0) return 0.0;
  const bool is_keep = kind != Priority::kMeasureDirectly;
  const std::size_t type_idx = is_keep ? 0 : 1;
  if (!cached_p_succ_[type_idx]) {
    const auto advice = link_.egp_a().feu().advise(
        config_.min_fidelity,
        is_keep ? RequestType::kCreateKeep : RequestType::kCreateMeasure);
    cached_p_succ_[type_idx] =
        advice.feasible
            ? link_.herald_model().distribution(advice.alpha, advice.alpha)
                  .p_success()
            : 0.0;
  }
  const double p_succ = *cached_p_succ_[type_idx];
  // E: expected MHP cycles per attempt (Section 6: ~1 for M, the REPLY
  // round trip and carbon-refresh overhead for K).
  double e_cycles = 1.0;
  if (is_keep) {
    const auto& feu = link_.egp_a().feu();
    const auto& nv = link_.scenario().nv;
    const double refresh =
        static_cast<double>(nv.carbon_refresh_duration) /
        static_cast<double>(nv.carbon_refresh_interval);
    e_cycles = static_cast<double>(feu.k_attempt_period_cycles()) /
               (1.0 - refresh);
  }
  return spec.fraction * p_succ / e_cycles;  // per pair; /k applied later
}

void WorkloadDriver::on_cycle() {
  maybe_issue(Priority::kNetworkLayer, config_.nl);
  maybe_issue(Priority::kCreateKeep, config_.ck);
  maybe_issue(Priority::kMeasureDirectly, config_.md);
  sweep_stale();
  collector_.sample_queue_length(link_.egp_a().queue().total_size());
}

void WorkloadDriver::maybe_issue(Priority kind, const KindSpec& spec) {
  const double base = issue_probability(kind, spec);
  if (base <= 0.0) return;
  const auto k = static_cast<std::uint16_t>(
      random_.uniform_int(1, std::max<std::uint16_t>(spec.k_max, 1)));
  const double p = base / static_cast<double>(k);
  if (!random_.bernoulli(p)) return;

  std::uint32_t origin = core::Link::kNodeA;
  switch (config_.origin) {
    case OriginMode::kAllA:
      origin = core::Link::kNodeA;
      break;
    case OriginMode::kAllB:
      origin = core::Link::kNodeB;
      break;
    case OriginMode::kRandom:
      origin = random_.bernoulli(0.5) ? core::Link::kNodeB
                                      : core::Link::kNodeA;
      break;
  }

  CreateRequest req;
  req.remote_node_id = origin == core::Link::kNodeA ? core::Link::kNodeB
                                                    : core::Link::kNodeA;
  req.num_pairs = k;
  req.min_fidelity = config_.min_fidelity;
  req.max_time = config_.max_time;
  req.priority = kind;
  req.consecutive = true;  // Section 6: all three kinds deliver per pair
  switch (kind) {
    case Priority::kNetworkLayer:
      req.type = RequestType::kCreateKeep;
      req.store_in_memory = true;
      req.purpose_id = 1;
      break;
    case Priority::kCreateKeep:
      req.type = RequestType::kCreateKeep;
      req.store_in_memory = true;
      req.purpose_id = 2;
      break;
    case Priority::kMeasureDirectly:
      req.type = RequestType::kCreateMeasure;
      req.store_in_memory = false;
      req.purpose_id = 3;
      break;
  }

  core::Egp& egp = link_.egp(origin);
  const std::uint32_t create_id = egp.create(req);
  kind_by_create_[origin][create_id] = kind;
  collector_.record_create(origin, create_id, kind, k, now());
  ++issued_;
}

void WorkloadDriver::on_ok(std::uint32_t node, const OkMessage& ok) {
  Priority kind = Priority::kCreateKeep;
  const auto it = kind_by_create_[ok.origin_node].find(ok.create_id);
  if (it != kind_by_create_[ok.origin_node].end()) kind = it->second;

  PendingPair& pending = pending_[ok.ent_id.seq_mhp];
  if (pending.first_seen == 0) pending.first_seen = now();
  (node == core::Link::kNodeA ? pending.ok_a : pending.ok_b) = ok;

  // Latency/goodness metrics are defined at the requesting node.
  if (node == ok.origin_node) {
    std::optional<double> fidelity;
    if (!ok.is_measure_directly && pending.ok_a && pending.ok_b) {
      fidelity =
          link_.pair_fidelity(pending.ok_a->qubit, pending.ok_b->qubit);
    }
    collector_.record_ok(ok, kind, now(), fidelity);
    if (ok.pair_index + 1 == ok.total_pairs) {
      kind_by_create_[ok.origin_node].erase(ok.create_id);
    }
  } else if (!ok.is_measure_directly && pending.ok_a && pending.ok_b) {
    // The origin's OK arrived first and was recorded without fidelity;
    // record it now that both halves are visible.
    collector_.kind(kind).fidelity.add(
        link_.pair_fidelity(pending.ok_a->qubit, pending.ok_b->qubit));
  }

  if (pending.ok_a && pending.ok_b) {
    consume(pending);
    pending_.erase(ok.ent_id.seq_mhp);
    ++matched_;
  }
}

void WorkloadDriver::consume(const PendingPair& pair) {
  if (pair.ok_a->is_measure_directly) {
    if (pair.ok_a->outcome >= 0 && pair.ok_b->outcome >= 0) {
      collector_.record_correlation(pair.ok_a->basis, pair.ok_a->outcome,
                                    pair.ok_b->outcome,
                                    pair.ok_a->heralded_state);
    }
    return;
  }
  link_.egp_a().release_delivered(*pair.ok_a);
  link_.egp_b().release_delivered(*pair.ok_b);
}

void WorkloadDriver::sweep_stale() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingPair& p = it->second;
    if (now() - p.first_seen > config_.stale_pair_horizon) {
      // The partner OK will never come (lost REPLY, later EXPIREd).
      if (p.ok_a && !p.ok_a->is_measure_directly) {
        link_.egp_a().release_delivered(*p.ok_a);
      }
      if (p.ok_b && !p.ok_b->is_measure_directly) {
        link_.egp_b().release_delivered(*p.ok_b);
      }
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

void WorkloadDriver::on_err(std::uint32_t node, const ErrMessage& err) {
  (void)node;
  collector_.record_err(err);
}

}  // namespace qlink::workload
