#include "netlayer/flow_plane.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "metrics/collector.hpp"
#include "metrics/edge_stats.hpp"
#include "qstate/bell_algebra.hpp"

namespace qlink::netlayer {

namespace ba = qlink::qstate::bell_algebra;

namespace {

/// Werner-state Bell coefficients in the corrected (Phi+-indexed)
/// frame — the same composition PathSelector::estimated_fidelity uses,
/// because the swap cascade's conditional Paulis fold every branch
/// back to index 0.
ba::BellCoeffs werner_coeffs(double fidelity) {
  const double f = std::clamp(fidelity, 0.0, 1.0);
  const double rest = (1.0 - f) / 3.0;
  return {f, rest, rest, rest};
}

}  // namespace

FlowCalibration FlowCalibration::from_link(
    core::Link& link, std::span<const double> floor_menu) {
  FlowCalibration cal;
  cal.delay_s = sim::to_seconds(link.scenario().delay_a_to_b());
  cal.menu.reserve(floor_menu.size());
  for (const double floor : floor_menu) {
    Entry entry;
    entry.floor = floor;
    const auto advice =
        link.egp_a().feu().advise(floor, core::RequestType::kCreateKeep);
    entry.feasible = advice.feasible;
    if (advice.feasible) {
      entry.fidelity = advice.estimated_fidelity;
      entry.pair_time_s = sim::to_seconds(advice.expected_time_per_pair);
      entry.p_succ = link.herald_model()
                         .distribution(advice.alpha, advice.alpha)
                         .p_success();
    }
    cal.menu.push_back(entry);
  }
  return cal;
}

const FlowCalibration::Entry* FlowCalibration::lookup(
    double floor) const noexcept {
  constexpr double kTol = 1e-9;
  for (const Entry& e : menu) {  // exact operating point first
    if (e.feasible && std::abs(e.floor - floor) <= kTol) return &e;
  }
  for (const Entry& e : menu) {  // else the best point meeting the floor
    if (e.feasible && e.floor >= floor - kTol) return &e;
  }
  return nullptr;
}

const FlowCalibration::Entry* FlowCalibration::best() const noexcept {
  for (const Entry& e : menu) {
    if (e.feasible) return &e;
  }
  return nullptr;
}

FlowPlane::FlowPlane(FlowPlaneConfig config)
    : owned_engine_(config.engine == nullptr
                        ? std::make_unique<sim::ShardedEngine>()
                        : nullptr),
      engine_(config.engine == nullptr ? owned_engine_.get() : config.engine),
      shard_(config.engine == nullptr ? 0 : config.shard),
      random_(config.seed),
      edges_(std::move(config.edges)),
      num_nodes_(config.num_nodes),
      calibration_(std::move(config.calibration)),
      calibrations_(std::move(config.calibrations)),
      collector_(config.collector) {
  if (shard_ >= engine_->num_shards()) {
    throw std::invalid_argument("FlowPlane: shard out of range");
  }
  if (edges_.empty()) {
    throw std::invalid_argument("FlowPlane: no links");
  }
  if (!calibrations_.empty() && calibrations_.size() != edges_.size()) {
    throw std::invalid_argument(
        "FlowPlane: per-link calibrations must cover every link");
  }
  std::uint32_t max_id = 0;
  for (const auto& [a, b] : edges_) {
    if (a == b) throw std::invalid_argument("FlowPlane: self-loop edge");
    max_id = std::max({max_id, a, b});
  }
  if (num_nodes_ == 0) num_nodes_ = max_id + 1;
  if (max_id >= num_nodes_) {
    throw std::invalid_argument("FlowPlane: edge names unknown node");
  }
  next_free_.assign(edges_.size(), 0);
}

core::Link::RateEstimate FlowPlane::estimate_link(std::size_t link,
                                                  double floor) {
  core::Link::RateEstimate est;
  constexpr double kTol = 1e-9;
  for (const FlowCalibration::Entry& e : calibration(link).menu) {
    if (std::abs(e.floor - floor) <= kTol) {
      est.feasible = e.feasible;
      est.fidelity = e.fidelity;
      est.pair_time_s = e.pair_time_s;
      return est;
    }
  }
  return est;  // floor not in the calibrated menu: infeasible
}

sim::SimTime FlowPlane::sample_pair_time(const FlowCalibration::Entry& entry,
                                         std::size_t link) {
  // Geometric(p_succ) attempt slots of slot_s = pair_time_s * p_succ
  // seconds each: mean slots = 1/p_succ, so the mean wall time is the
  // FEU's expected pair time while the variance matches the attempt
  // process the full-detail MHP realises.
  const double p = std::clamp(entry.p_succ, 1e-9, 1.0);
  const double slot_s = entry.pair_time_s * p;
  const std::uint64_t slots =
      1 + static_cast<std::uint64_t>(
              std::floor(std::log(std::max(random_.uniform(), 1e-300)) /
                         std::log1p(-std::min(p, 1.0 - 1e-12))));
  stats_.attempts += slots;
  if (edge_stats_ != nullptr) edge_stats_->on_attempt(link, slots);
  return std::max<sim::SimTime>(
      sim::duration::seconds(static_cast<double>(slots) * slot_s), 1);
}

std::uint32_t FlowPlane::submit(const E2eRequest& request,
                                const std::vector<Hop>& route,
                                std::span<const double> hop_floors) {
  if (request.src == request.dst) {
    throw std::invalid_argument("FlowPlane: src == dst");
  }
  if (route.empty()) {
    throw std::invalid_argument("FlowPlane: empty route");
  }
  if (!hop_floors.empty() && hop_floors.size() != route.size()) {
    throw std::invalid_argument(
        "FlowPlane: hop_floors must match the route length");
  }
  std::uint32_t at = request.src;
  for (const Hop& hop : route) {
    if (hop.link >= edges_.size()) {
      throw std::invalid_argument("FlowPlane: route names unknown link");
    }
    const auto [a, b] = edges_[hop.link];
    const std::uint32_t entry_node = hop.reversed ? b : a;
    const std::uint32_t exit_node = hop.reversed ? a : b;
    if (entry_node != at) {
      throw std::invalid_argument("FlowPlane: route is not contiguous");
    }
    at = exit_node;
  }
  if (at != request.dst) {
    throw std::invalid_argument("FlowPlane: route does not end at dst");
  }

  const std::uint32_t id = next_request_id_++;
  ++stats_.requests;
  const sim::SimTime now = simulator().now();
  const sim::SimTime submitted =
      request.submitted_at >= 0 ? request.submitted_at : now;
  const std::uint16_t pairs = std::max<std::uint16_t>(request.num_pairs, 1);
  if (collector_ != nullptr) {
    // Admission time, like SwapService: router queue wait is tracked
    // separately (record_admission_wait), not folded into latency.
    collector_->record_create(request.src, id,
                              core::Priority::kNetworkLayer, pairs, now);
  }

  // Resolve every hop's operating point up front; an infeasible hop
  // fails the request asynchronously (the full-detail plane would
  // surface it as an UNSUPP ERR after the CREATE round-trip).
  std::vector<const FlowCalibration::Entry*> points(route.size());
  double corr_delay_s = 0.0;
  for (std::size_t h = 0; h < route.size(); ++h) {
    const double floor = !hop_floors.empty() && hop_floors[h] > 0.0
                             ? hop_floors[h]
                             : request.effective_link_floor();
    points[h] = calibration(route[h].link).lookup(floor);
    corr_delay_s += calibration(route[h].link).delay_s;
    if (points[h] == nullptr) {
      const std::size_t link = route[h].link;
      simulator().schedule_in(
          1,
          [this, id, link] {
            if (on_error_ != nullptr) {
              on_error_({id, core::EgpError::kUnsupported, link});
            }
          },
          "flow.error");
      return id;
    }
  }

  // Per-hop generation: sequential pairs starting when the link frees
  // up (FIFO service). ready[h] walks the hop's cumulative timeline.
  std::vector<sim::SimTime> ready(route.size());
  for (std::size_t h = 0; h < route.size(); ++h) {
    ready[h] = std::max(now, next_free_[route[h].link]);
  }

  // Everything the delivery events share (route facts for edge stats);
  // one allocation per request, not per pair.
  struct RouteFacts {
    std::vector<std::size_t> links;
    std::vector<std::uint32_t> swap_nodes;  // intermediate nodes
    double fidelity = 0.0;
  };
  auto facts = std::make_shared<RouteFacts>();
  facts->links.reserve(route.size());
  ba::BellCoeffs acc = werner_coeffs(points[0]->fidelity);
  std::uint32_t node = request.src;
  for (std::size_t h = 0; h < route.size(); ++h) {
    facts->links.push_back(route[h].link);
    if (h > 0) {
      acc = ba::swap_coefficients(acc, werner_coeffs(points[h]->fidelity),
                                  0, 0);
      facts->swap_nodes.push_back(node);
    }
    const auto [a, b] = edges_[route[h].link];
    node = route[h].reversed ? a : b;
  }
  facts->fidelity = acc[0];

  const sim::SimTime corr = sim::duration::seconds(corr_delay_s);
  for (std::uint16_t j = 0; j < pairs; ++j) {
    sim::SimTime slowest = 0;
    for (std::size_t h = 0; h < route.size(); ++h) {
      ready[h] += sample_pair_time(*points[h], route[h].link);
      slowest = std::max(slowest, ready[h]);
    }
    E2eOk ok;
    ok.request_id = id;
    ok.src = request.src;
    ok.dst = request.dst;
    ok.pair_index = j;
    ok.total_pairs = pairs;
    ok.fidelity = facts->fidelity;
    ok.submit_time = submitted;
    ok.deliver_time = slowest + corr;
    ok.swaps = static_cast<int>(route.size()) - 1;
    ok.link_src = route.front().link;
    ok.link_dst = route.back().link;
    const double corr_s = corr_delay_s;
    const sim::SimTime admitted = now;
    simulator().schedule_at(
        ok.deliver_time,
        [this, ok, facts, corr_s, admitted] {
          ++stats_.pairs_delivered;
          if (edge_stats_ != nullptr) {
            for (const std::size_t link : facts->links) {
              edge_stats_->on_delivered_edge(link, facts->fidelity);
            }
            for (const std::uint32_t n : facts->swap_nodes) {
              edge_stats_->on_swap(n);
            }
            edge_stats_->on_delivered_pair(ok.src, ok.dst);
          }
          if (collector_ != nullptr) {
            // Phase split at flow level: everything up to the last
            // hop's completion is generation; the swap cascade is
            // folded into the model (0); the classical-correction
            // flight is the summed one-way delays.
            collector_->record_pair_phases(
                ok.src, ok.request_id,
                sim::to_seconds(ok.deliver_time - admitted) - corr_s,
                0.0, corr_s);
            core::OkMessage record;
            record.create_id = ok.request_id;
            record.origin_node = ok.src;
            record.pair_index = ok.pair_index;
            record.total_pairs = ok.total_pairs;
            record.goodness = ok.fidelity;
            record.goodness_time = ok.deliver_time;
            record.create_time = ok.submit_time;
            collector_->record_ok(record, core::Priority::kNetworkLayer,
                                  simulator().now(), ok.fidelity);
          }
          if (on_deliver_ != nullptr) on_deliver_(ok);
        },
        "flow.deliver");
  }
  for (std::size_t h = 0; h < route.size(); ++h) {
    next_free_[route[h].link] = ready[h];
  }
  return id;
}

}  // namespace qlink::netlayer
