#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <tuple>
#include <vector>

#include "core/requests.hpp"
#include "metrics/collector.hpp"
#include "netlayer/plane.hpp"
#include "netlayer/topology.hpp"
#include "obs/trace.hpp"
#include "sim/entity.hpp"

/// \file swap_service.hpp
/// Network-layer entanglement swapping (Section 3.3 / Figure 1b).
///
/// The SwapService is the higher layer the EGP serves: it owns the
/// OK/ERR streams of every EGP in a QuantumNetwork. An end-to-end
/// request fans out into one link-layer CREATE per hop of the route;
/// as matched OK pairs surface on every hop, the service Bell-measures
/// the two halves held at each intermediate node (the mechanics proven
/// in examples/repeater_swap_nl.cpp, generalised to arbitrary routes),
/// applies the conditional Pauli corrections toward the destination,
/// and delivers an end-to-end pair whose fidelity is measured with
/// simulator privilege and tracked through metrics::Collector.

namespace qlink::netlayer {

// E2eRequest / E2eOk / E2eErr are the entanglement plane's wire format
// and live in netlayer/plane.hpp (included above): they are shared
// with the flow-level fast path.

/// The full-detail entanglement plane (the validation oracle).
class SwapService : public sim::Entity, public EntanglementPlane {
 public:
  using DeliverFn = EntanglementPlane::DeliverFn;
  using ErrorFn = EntanglementPlane::ErrorFn;
  using UnclaimedFn = std::function<void(std::size_t link, std::uint32_t node,
                                         const core::OkMessage&)>;

  struct Stats {
    std::uint64_t requests = 0;
    /// Of `requests`, how many were re-routing resubmissions.
    std::uint64_t resubmissions = 0;
    std::uint64_t link_pairs_consumed = 0;
    std::uint64_t swaps = 0;
    std::uint64_t pairs_delivered = 0;
    std::uint64_t errors = 0;
    std::uint64_t unclaimed_oks = 0;
  };

  /// Takes over the OK/ERR handlers of every EGP in `network`. At most
  /// one SwapService per network; `collector` (optional) receives
  /// record_create/record_ok/record_err under Priority::kNetworkLayer.
  explicit SwapService(QuantumNetwork& network,
                       metrics::Collector* collector = nullptr);

  /// Submit an end-to-end request over the network's minimum-hop path.
  /// Returns its id; deliveries arrive through the deliver handler.
  std::uint32_t request(const E2eRequest& request);

  /// Submit over an explicit routed path (e.g. a routing::PathSelector
  /// candidate, translated to Hops). The route must be a contiguous
  /// src -> dst walk over existing links (std::invalid_argument
  /// otherwise). `hop_floors`, when non-empty, carries one per-hop
  /// CREATE fidelity floor; entries > 0 override the request's
  /// effective_link_floor() on that hop — heterogeneous links are
  /// operated at the quality set-point their hardware supports.
  std::uint32_t request(const E2eRequest& request,
                        const std::vector<Hop>& route,
                        std::span<const double> hop_floors = {});

  // --- EntanglementPlane ---
  sim::EngineRef engine_ref() noexcept override { return net_.engine_ref(); }
  sim::Simulator& simulator() noexcept override {
    return Entity::simulator();
  }
  std::size_t num_links() const noexcept override;
  std::size_t num_nodes() const noexcept override;
  std::pair<std::uint32_t, std::uint32_t> endpoints(
      std::size_t link) const override;
  std::uint32_t submit(const E2eRequest& req, const std::vector<Hop>& route,
                       std::span<const double> hop_floors = {}) override {
    return request(req, route, hop_floors);
  }
  core::Link::RateEstimate estimate_link(std::size_t link,
                                         double floor) override;
  double link_delay_s(std::size_t link) const override;
  core::Link::TestRoundEstimate measured_estimate(
      std::size_t link) const override;
  QuantumNetwork* network() noexcept override { return &net_; }

  void set_deliver_handler(DeliverFn fn) override {
    on_deliver_ = std::move(fn);
  }
  void set_error_handler(ErrorFn fn) override { on_error_ = std::move(fn); }
  /// Called for OKs that belong to no end-to-end request (e.g. link
  /// traffic issued directly by a test). Default: K-type pairs are
  /// released immediately so they cannot exhaust device memory.
  void set_unclaimed_handler(UnclaimedFn fn) { on_unclaimed_ = std::move(fn); }

  /// The higher layer is done with a delivered end-to-end pair.
  void release(const E2eOk& ok) override;

  /// Attach a lifecycle tracer (null to detach). The tracer only
  /// records — it never schedules events or consumes randomness — so
  /// attaching one cannot perturb the trajectory.
  void set_tracer(obs::Tracer* tracer) noexcept { tracer_ = tracer; }

  /// Attach a per-edge accounting substrate (null to detach): receives
  /// per-hop CREATE attempts, swap executions, and per-hop delivery
  /// facts. Recording only — cannot perturb the trajectory.
  void set_edge_stats(metrics::EdgeStats* stats) noexcept override {
    edge_stats_ = stats;
  }

  const Stats& stats() const noexcept { return stats_; }
  std::size_t open_requests() const noexcept { return requests_.size(); }

 private:
  struct PartialPair {
    std::optional<core::OkMessage> a;  // link's A-side OK
    std::optional<core::OkMessage> b;  // link's B-side OK
  };

  struct MatchedPair {
    std::size_t link = 0;
    core::OkMessage a;
    core::OkMessage b;
  };

  struct HopState {
    Hop hop;
    std::uint32_t create_id = 0;
    std::uint64_t span_id = 0;  // open async CREATE->done trace span
    std::map<std::uint32_t, PartialPair> partial;  // by ent_id.seq_mhp
    std::deque<MatchedPair> ready;
  };

  struct RequestState {
    std::uint32_t id = 0;
    E2eRequest req;
    sim::SimTime submitted = 0;
    /// When the SwapService admitted the request (issued its CREATEs);
    /// anchors the generation phase of the latency decomposition.
    sim::SimTime admitted = 0;
    std::vector<HopState> hops;
    std::uint16_t launched = 0;   // cascades started
    std::uint16_t delivered = 0;  // end-to-end pairs delivered
  };

  void on_ok(std::size_t link, std::uint32_t node, const core::OkMessage& ok);
  void on_err(std::size_t link, std::uint32_t node, const core::ErrMessage&);
  void try_launch(RequestState& rs);
  void run_cascade(std::uint32_t request_id, std::vector<MatchedPair> pairs,
                   sim::SimTime launched_at);
  void fail_request(RequestState& rs, std::size_t link, core::EgpError error);
  /// Returns how many pair halves/pairs were dropped.
  std::size_t drop_revoked(RequestState& rs, std::size_t link,
                           std::uint32_t seq_low, std::uint32_t seq_high);
  void erase_request(std::uint32_t id);

  /// OK held at the node a hop enters at (near end) / exits from (far).
  static const core::OkMessage& near_ok(const Hop& h, const MatchedPair& p) {
    return h.reversed ? p.b : p.a;
  }
  static const core::OkMessage& far_ok(const Hop& h, const MatchedPair& p) {
    return h.reversed ? p.a : p.b;
  }

  /// Worst-case classical delay for swap outcomes to reach dst: the
  /// route length in one-way link delays from the first swap node.
  sim::SimTime correction_delay(const RequestState& rs);

  QuantumNetwork& net_;
  metrics::Collector* collector_;
  std::map<std::uint32_t, RequestState> requests_;
  /// (link index, origin node of the CREATE, link-layer create id) ->
  /// (request id, hop index). Create ids are per-EGP counters, so two
  /// requests entering one link from opposite ends can share an id —
  /// the origin node disambiguates them.
  std::map<std::tuple<std::size_t, std::uint32_t, std::uint32_t>,
           std::pair<std::uint32_t, std::size_t>>
      by_create_;
  std::uint32_t next_request_id_ = 1;
  obs::Tracer* tracer_ = nullptr;
  metrics::EdgeStats* edge_stats_ = nullptr;
  DeliverFn on_deliver_;
  ErrorFn on_error_;
  UnclaimedFn on_unclaimed_;
  Stats stats_;
};

}  // namespace qlink::netlayer
