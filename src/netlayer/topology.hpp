#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/network.hpp"
#include "quantum/registry.hpp"
#include "sim/random.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"

/// \file topology.hpp
/// Multi-link topologies on a single simulation clock.
///
/// The paper's network layer (Section 3.3 / Figure 1b) composes
/// link-layer pairs into long-distance entanglement. A QuantumNetwork
/// instantiates N core::Links that share one Simulator, one Random
/// source, and one QuantumRegistry, so (a) every link advances on the
/// same deterministic clock and (b) qubits of different links can be
/// joined into one density matrix when a swap entangles them.
///
/// Since ISSUE 10 the network constructs against a sim::ShardedEngine
/// handle rather than owning a bare Simulator: by default it still owns
/// a private single-shard engine (byte-identical to the old behaviour),
/// but NetworkConfig::engine/shard bind it as one *island* of a sharded
/// run — all of its links (and their quantum state) live on that one
/// shard, and only classical channels may reach other shards.
///
/// Shapes: the built-in chain of N links (nodes 0..N, link i between
/// nodes i and i+1) and star of N links (center node 0, leaves 1..N),
/// or — the general form — an explicit undirected edge list over
/// arbitrary node ids (rings, grids, tori, dragonflies, ...; the
/// generators live in routing::Graph, and routing::make_network_config
/// converts a graph into a NetworkConfig). Edge lists are validated on
/// construction: self-loops, duplicate links, and unknown node ids are
/// rejected with std::invalid_argument.

namespace qlink::netlayer {

enum class TopologyKind { kChain, kStar };

struct NetworkConfig {
  /// Built-in shape; ignored when `edges` is non-empty.
  TopologyKind kind = TopologyKind::kChain;
  /// Number of links (chain: hops; star: leaves). Nodes = links + 1.
  /// Ignored when `edges` is non-empty.
  std::size_t num_links = 2;
  /// Explicit undirected edge list (general graphs): link i joins
  /// global node ids edges[i].first (A side) and edges[i].second (B
  /// side). Overrides `kind`/`num_links` when non-empty.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  /// Node count in edge-list mode; 0 infers max listed id + 1. Ids in
  /// `edges` must be < num_nodes.
  std::size_t num_nodes = 0;
  /// Per-link template (scenario, scheduler, ...). Node ids and labels
  /// are overwritten per link by the topology.
  core::LinkConfig link;
  /// Optional per-link customisation for heterogeneous networks: called
  /// with the link index and its template-initialised config (node ids
  /// already assigned) before the link is built.
  std::function<void(std::size_t, core::LinkConfig&)> configure_link;
  /// Seed of the single shared Random source.
  std::uint64_t seed = 1;
  /// Bind the network to one shard of an existing engine instead of
  /// owning a private single-shard one. Every link of this network
  /// lives on that shard (quantum links must be intra-shard — see
  /// sim::ShardAssignment); the engine must outlive the network.
  sim::ShardedEngine* engine = nullptr;
  std::size_t shard = 0;
};

/// One step of a route: which link to traverse and in which direction.
/// `reversed == false` means the route enters at the link's A node and
/// exits at its B node.
struct Hop {
  std::size_t link = 0;
  bool reversed = false;
};

class QuantumNetwork {
 public:
  explicit QuantumNetwork(const NetworkConfig& config);

  QuantumNetwork(const QuantumNetwork&) = delete;
  QuantumNetwork& operator=(const QuantumNetwork&) = delete;

  sim::Simulator& simulator() noexcept { return engine_->sim(shard_); }
  sim::ShardedEngine& engine() noexcept { return *engine_; }
  std::size_t shard() const noexcept { return shard_; }
  /// The handle downstream layers (planes, Router) construct against.
  sim::EngineRef engine_ref() noexcept { return engine_->ref(shard_); }
  sim::Random& random() noexcept { return random_; }
  quantum::QuantumRegistry& registry() noexcept { return registry_; }
  const NetworkConfig& config() const noexcept { return config_; }

  std::size_t num_links() const noexcept { return links_.size(); }
  std::size_t num_nodes() const noexcept { return num_nodes_; }
  core::Link& link(std::size_t i) { return *links_.at(i); }

  /// Global node ids of link i, (A side, B side).
  std::pair<std::uint32_t, std::uint32_t> endpoints(std::size_t i) const {
    return {links_.at(i)->node_id_a(), links_.at(i)->node_id_b()};
  }

  /// Node ids a hop enters at / exits from.
  std::uint32_t hop_entry(const Hop& h) const {
    const auto [a, b] = endpoints(h.link);
    return h.reversed ? b : a;
  }
  std::uint32_t hop_exit(const Hop& h) const {
    const auto [a, b] = endpoints(h.link);
    return h.reversed ? a : b;
  }

  /// EGP instance of node `node_id` on link i (node must be an endpoint).
  core::Egp& egp_at(std::size_t i, std::uint32_t node_id) {
    return links_.at(i)->egp(node_id);
  }

  /// A minimum-hop route between two nodes (breadth-first search; the
  /// unique route on tree topologies). General graphs get smarter
  /// routing from routing::PathSelector — this is the fallback the
  /// SwapService uses when no explicit route is supplied. Throws
  /// std::invalid_argument if either node id is out of range, the
  /// nodes coincide, or the nodes are not connected.
  std::vector<Hop> path(std::uint32_t src, std::uint32_t dst) const;

  /// Start every link's MHP cycle clocks.
  void start();

  /// Advance the clock. When bound to a shared engine this drives the
  /// whole engine: every shard advances together to the same time.
  void run_for(sim::SimTime span) {
    engine_->run_until(simulator().now() + span);
  }
  void run_until(sim::SimTime t) { engine_->run_until(t); }

 private:
  /// Validated (node_a, node_b) pairs for every link, resolved from
  /// either the built-in shape or the explicit edge list.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> resolve_edges();

  NetworkConfig config_;
  /// Private single-shard engine when the config does not bind one.
  std::unique_ptr<sim::ShardedEngine> owned_engine_;
  sim::ShardedEngine* engine_ = nullptr;
  std::size_t shard_ = 0;
  sim::Random random_;
  quantum::QuantumRegistry registry_;
  std::size_t num_nodes_ = 0;
  std::vector<std::unique_ptr<core::Link>> links_;
};

}  // namespace qlink::netlayer
