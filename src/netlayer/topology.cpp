#include "netlayer/topology.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>

namespace qlink::netlayer {

QuantumNetwork::QuantumNetwork(const NetworkConfig& config)
    : config_(config),
      random_(config.seed),
      registry_(random_, config.link.backend) {
  if (config_.num_links == 0) {
    throw std::invalid_argument("QuantumNetwork: at least one link");
  }
  links_.reserve(config_.num_links);
  for (std::size_t i = 0; i < config_.num_links; ++i) {
    core::LinkConfig lc = config_.link;
    lc.label = "[" + std::to_string(i) + "]";
    switch (config_.kind) {
      case TopologyKind::kChain:
        // Nodes 0..N along the chain.
        lc.node_id_a = static_cast<std::uint32_t>(i);
        lc.node_id_b = static_cast<std::uint32_t>(i + 1);
        break;
      case TopologyKind::kStar:
        // Leaf at the A side, center (node 0) at the B side, so a
        // leaf-to-leaf route is forward over the first hop and
        // reversed over the second.
        lc.node_id_a = static_cast<std::uint32_t>(i + 1);
        lc.node_id_b = 0;
        break;
    }
    links_.push_back(std::make_unique<core::Link>(simulator_, random_,
                                                  registry_, lc));
  }
}

std::vector<Hop> QuantumNetwork::path(std::uint32_t src,
                                      std::uint32_t dst) const {
  const auto nodes = static_cast<std::uint32_t>(num_nodes());
  if (src >= nodes || dst >= nodes) {
    throw std::invalid_argument("path: node id out of range");
  }
  if (src == dst) {
    throw std::invalid_argument("path: src == dst");
  }

  // BFS over the (tree) adjacency; record the hop that discovered each
  // node and walk back from dst.
  std::vector<std::optional<Hop>> via(nodes);
  std::vector<bool> seen(nodes, false);
  std::queue<std::uint32_t> frontier;
  seen[src] = true;
  frontier.push(src);
  while (!frontier.empty() && !seen[dst]) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const auto [a, b] = endpoints(i);
      std::optional<Hop> hop;
      if (a == u && !seen[b]) hop = Hop{i, false};
      if (b == u && !seen[a]) hop = Hop{i, true};
      if (!hop) continue;
      const std::uint32_t v = hop_exit(*hop);
      seen[v] = true;
      via[v] = *hop;
      frontier.push(v);
    }
  }
  if (!seen[dst]) {
    throw std::invalid_argument("path: nodes not connected");
  }

  std::vector<Hop> hops;
  for (std::uint32_t v = dst; v != src;) {
    const Hop h = *via[v];
    hops.push_back(h);
    v = hop_entry(h);
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

void QuantumNetwork::start() {
  for (auto& link : links_) link->start();
}

}  // namespace qlink::netlayer
