#include "netlayer/topology.hpp"

#include <algorithm>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>

namespace qlink::netlayer {

std::vector<std::pair<std::uint32_t, std::uint32_t>>
QuantumNetwork::resolve_edges() {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;

  if (config_.edges.empty()) {
    // Built-in shapes: chain of num_links hops or star of num_links
    // leaves; nodes = links + 1 either way.
    if (config_.num_links == 0) {
      throw std::invalid_argument("QuantumNetwork: at least one link");
    }
    edges.reserve(config_.num_links);
    for (std::size_t i = 0; i < config_.num_links; ++i) {
      switch (config_.kind) {
        case TopologyKind::kChain:
          // Nodes 0..N along the chain.
          edges.emplace_back(static_cast<std::uint32_t>(i),
                             static_cast<std::uint32_t>(i + 1));
          break;
        case TopologyKind::kStar:
          // Leaf at the A side, center (node 0) at the B side, so a
          // leaf-to-leaf route is forward over the first hop and
          // reversed over the second.
          edges.emplace_back(static_cast<std::uint32_t>(i + 1), 0);
          break;
      }
    }
    num_nodes_ = config_.num_links + 1;
    return edges;
  }

  // Explicit edge list: validate before any link is built so malformed
  // topologies fail loudly instead of silently mis-routing.
  std::uint32_t max_id = 0;
  for (const auto& [a, b] : config_.edges) {
    max_id = std::max({max_id, a, b});
  }
  num_nodes_ = config_.num_nodes != 0
                   ? config_.num_nodes
                   : static_cast<std::size_t>(max_id) + 1;
  for (std::size_t i = 0; i < config_.edges.size(); ++i) {
    const auto [a, b] = config_.edges[i];
    if (a == b) {
      throw std::invalid_argument("QuantumNetwork: link " +
                                  std::to_string(i) + " is a self-loop at node " +
                                  std::to_string(a));
    }
    if (a >= num_nodes_ || b >= num_nodes_) {
      throw std::invalid_argument(
          "QuantumNetwork: link " + std::to_string(i) +
          " references unknown node id " +
          std::to_string(a >= num_nodes_ ? a : b) + " (num_nodes = " +
          std::to_string(num_nodes_) + ")");
    }
    for (std::size_t j = 0; j < i; ++j) {
      const auto [pa, pb] = config_.edges[j];
      if ((pa == a && pb == b) || (pa == b && pb == a)) {
        throw std::invalid_argument(
            "QuantumNetwork: links " + std::to_string(j) + " and " +
            std::to_string(i) + " duplicate the pair " + std::to_string(a) +
            "-" + std::to_string(b));
      }
    }
  }
  return config_.edges;
}

QuantumNetwork::QuantumNetwork(const NetworkConfig& config)
    : config_(config),
      owned_engine_(config.engine == nullptr
                        ? std::make_unique<sim::ShardedEngine>()
                        : nullptr),
      engine_(config.engine == nullptr ? owned_engine_.get() : config.engine),
      shard_(config.engine == nullptr ? 0 : config.shard),
      random_(config.seed),
      registry_(random_, config.link.backend) {
  if (shard_ >= engine_->num_shards()) {
    throw std::invalid_argument("QuantumNetwork: shard out of range");
  }
  sim::Simulator& simulator = engine_->sim(shard_);
  const auto edges = resolve_edges();
  links_.reserve(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    core::LinkConfig lc = config_.link;
    lc.label = "[" + std::to_string(i) + "]";
    lc.node_id_a = edges[i].first;
    lc.node_id_b = edges[i].second;
    if (config_.configure_link) config_.configure_link(i, lc);
    // The per-link hook must not re-wire the topology (or swap in a
    // different backend than the shared registry was built with).
    lc.node_id_a = edges[i].first;
    lc.node_id_b = edges[i].second;
    lc.backend = config_.link.backend;
    links_.push_back(std::make_unique<core::Link>(simulator, random_,
                                                  registry_, lc));
  }
}

std::vector<Hop> QuantumNetwork::path(std::uint32_t src,
                                      std::uint32_t dst) const {
  const auto nodes = static_cast<std::uint32_t>(num_nodes());
  if (src >= nodes || dst >= nodes) {
    throw std::invalid_argument("path: node id out of range");
  }
  if (src == dst) {
    throw std::invalid_argument("path: src == dst");
  }

  // BFS over the adjacency (minimum-hop on general graphs, the unique
  // route on trees); record the hop that discovered each node and walk
  // back from dst.
  std::vector<std::optional<Hop>> via(nodes);
  std::vector<bool> seen(nodes, false);
  std::queue<std::uint32_t> frontier;
  seen[src] = true;
  frontier.push(src);
  while (!frontier.empty() && !seen[dst]) {
    const std::uint32_t u = frontier.front();
    frontier.pop();
    for (std::size_t i = 0; i < links_.size(); ++i) {
      const auto [a, b] = endpoints(i);
      std::optional<Hop> hop;
      if (a == u && !seen[b]) hop = Hop{i, false};
      if (b == u && !seen[a]) hop = Hop{i, true};
      if (!hop) continue;
      const std::uint32_t v = hop_exit(*hop);
      seen[v] = true;
      via[v] = *hop;
      frontier.push(v);
    }
  }
  if (!seen[dst]) {
    throw std::invalid_argument("path: nodes not connected");
  }

  std::vector<Hop> hops;
  for (std::uint32_t v = dst; v != src;) {
    const Hop h = *via[v];
    hops.push_back(h);
    v = hop_entry(h);
  }
  std::reverse(hops.begin(), hops.end());
  return hops;
}

void QuantumNetwork::start() {
  for (auto& link : links_) link->start();
}

}  // namespace qlink::netlayer
