#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/requests.hpp"
#include "netlayer/topology.hpp"
#include "obs/trace.hpp"

/// \file plane.hpp
/// The entanglement plane: the seam between the routing layer and
/// whatever actually produces end-to-end pairs.
///
/// Two implementations exist. netlayer::SwapService is the full-detail
/// oracle — every MHP attempt, EGP OK, swap Bell measurement and Pauli
/// correction is simulated. netlayer::FlowPlane is the flow-level fast
/// path — for steady-state links it replaces per-attempt event churn
/// with inter-delivery times sampled from the link's FEU-calibrated
/// success model, so million-request workloads fit in minutes of wall
/// time. The routing::Router speaks only this interface; which plane
/// backs it is the caller's choice, and the full-detail plane remains
/// the validation oracle the fast path is asserted against (see
/// tests/test_flow_plane.cpp and bench/bench_workload_scale.cpp).
///
/// The request/delivery/error message types live here because they are
/// the plane's wire format, shared by every implementation.

namespace qlink::metrics {
class Collector;
class EdgeStats;
}

namespace qlink::netlayer {

/// End-to-end entanglement request between two nodes of the network.
struct E2eRequest {
  std::uint32_t src = 0;
  std::uint32_t dst = 1;
  std::uint16_t num_pairs = 1;
  /// End-to-end target; also the per-link CREATE floor unless
  /// link_min_fidelity is set. (Swapping multiplies infidelities, so a
  /// route of n hops at link fidelity F ends near F^n.)
  double min_fidelity = 0.5;
  /// Per-link CREATE min_fidelity override; 0 = use min_fidelity.
  double link_min_fidelity = 0.0;
  /// The fidelity floor each hop's CREATE actually carries (also what
  /// issue-rate calibration must use).
  double effective_link_floor() const {
    return link_min_fidelity > 0.0 ? link_min_fidelity : min_fidelity;
  }
  sim::SimTime max_time = 0;  // tmax per link-layer CREATE; 0 = unbounded
  std::uint16_t purpose_id = 1;
  /// When >= 0, the time the higher layer first saw this request; the
  /// delivery latency is measured from here. The routing layer stamps
  /// it at submission so time spent queued behind reservations counts.
  /// Negative (default): stamped when the plane admits it.
  sim::SimTime submitted_at = -1;
  /// Move each link pair into carbon memory on delivery (survives the
  /// wait for the slowest hop; needs the decoupled-memory scenario for
  /// long waits, see examples/chain_e2e_nl.cpp).
  bool store_in_memory = true;
  /// Set by the routing layer when re-submitting a failed request over
  /// a sibling path (adaptive re-routing): the plane request id this
  /// one continues. Metrics then carry the original submission's
  /// latency entry to the new id instead of counting a fresh request.
  /// 0 = a fresh request.
  std::uint32_t resubmission_of = 0;
  /// Request-lifecycle trace lane (obs::Tracer::new_trace), stamped by
  /// whoever first sees the request and carried through resubmissions
  /// so a rerouted request stays one trace. 0 = untraced.
  obs::TraceId trace_id = 0;
};

/// End-to-end delivery, the network-layer analogue of core::OkMessage.
struct E2eOk {
  std::uint32_t request_id = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  std::uint16_t pair_index = 0;
  std::uint16_t total_pairs = 1;
  quantum::QubitId qubit_src = 0;
  quantum::QubitId qubit_dst = 0;
  /// Fidelity of the delivered pair to |Psi+>, measured at delivery
  /// time with simulator privilege (full detail) or composed from the
  /// per-hop operating points (flow level).
  double fidelity = 0.0;
  sim::SimTime submit_time = 0;
  sim::SimTime deliver_time = 0;
  int swaps = 0;
  /// Link-layer backing of the two ends (needed to release them; unset
  /// on the flow plane, which holds no device memory).
  std::size_t link_src = 0;
  std::size_t link_dst = 0;
  core::OkMessage ok_src;
  core::OkMessage ok_dst;
};

struct E2eErr {
  std::uint32_t request_id = 0;
  core::EgpError error = core::EgpError::kNone;
  std::size_t link = 0;
};

/// Abstract entanglement plane. Implementations must be deterministic:
/// the same seed and submission sequence replays the same deliveries.
class EntanglementPlane {
 public:
  using DeliverFn = std::function<void(const E2eOk&)>;
  using ErrorFn = std::function<void(const E2eErr&)>;

  virtual ~EntanglementPlane() = default;

  /// The engine shard this plane's deliveries run on. Every plane is
  /// bound to exactly one shard (a default-constructed plane owns a
  /// private single-shard engine); the routing layer constructs against
  /// this handle rather than a bare Simulator&.
  virtual sim::EngineRef engine_ref() noexcept = 0;

  /// The clock every delivery is scheduled on (the bound shard's
  /// simulator).
  virtual sim::Simulator& simulator() noexcept { return engine_ref().sim(); }

  virtual std::size_t num_links() const noexcept = 0;
  virtual std::size_t num_nodes() const noexcept = 0;
  /// Global node ids of link i, (A side, B side).
  virtual std::pair<std::uint32_t, std::uint32_t> endpoints(
      std::size_t link) const = 0;

  /// Submit over an explicit routed path. The route must be a
  /// contiguous src -> dst walk over existing links
  /// (std::invalid_argument otherwise). `hop_floors`, when non-empty,
  /// carries one per-hop CREATE fidelity floor; entries > 0 override
  /// the request's effective_link_floor() on that hop. Returns the
  /// plane-scoped request id; deliveries arrive through the deliver
  /// handler.
  virtual std::uint32_t submit(const E2eRequest& request,
                               const std::vector<Hop>& route,
                               std::span<const double> hop_floors = {}) = 0;

  /// The higher layer is done with a delivered end-to-end pair.
  virtual void release(const E2eOk& ok) = 0;

  virtual void set_deliver_handler(DeliverFn fn) = 0;
  virtual void set_error_handler(ErrorFn fn) = 0;

  /// Attach a per-edge accounting substrate (null to detach).
  /// Recording only — cannot perturb the trajectory.
  virtual void set_edge_stats(metrics::EdgeStats* stats) noexcept = 0;

  /// Planning estimates for Router::annotate_from_network: what pair
  /// quality/rate does `link` sustain when operated at CREATE floor
  /// `floor`?
  virtual core::Link::RateEstimate estimate_link(std::size_t link,
                                                 double floor) = 0;
  /// One-way classical delay of `link`, seconds (route-length costing
  /// and swap-correction latency).
  virtual double link_delay_s(std::size_t link) const = 0;
  /// The link's most recent *measured* quality, for
  /// Router::refresh_annotations. Planes without live measurements
  /// (the flow plane) return an empty estimate — the router then stays
  /// on the static model.
  virtual core::Link::TestRoundEstimate measured_estimate(
      std::size_t link) const = 0;

  /// The full-detail network behind this plane, when one exists. The
  /// flow plane returns nullptr: callers needing device access must
  /// check.
  virtual QuantumNetwork* network() noexcept { return nullptr; }
};

}  // namespace qlink::netlayer
