#include "netlayer/swap_service.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "metrics/edge_stats.hpp"
#include "quantum/bell.hpp"
#include "quantum/gates.hpp"

namespace qlink::netlayer {

using core::CreateRequest;
using core::OkMessage;
using core::Priority;
using core::RequestType;
using quantum::QubitId;
namespace gates = quantum::gates;
namespace bell = quantum::bell;

SwapService::SwapService(QuantumNetwork& network,
                         metrics::Collector* collector)
    : Entity(network.simulator(), "swap-service"),
      net_(network),
      collector_(collector) {
  for (std::size_t i = 0; i < net_.num_links(); ++i) {
    const auto [node_a, node_b] = net_.endpoints(i);
    for (std::uint32_t node : {node_a, node_b}) {
      core::Egp& egp = net_.link(i).egp(node);
      egp.set_ok_handler([this, i, node](const OkMessage& ok) {
        on_ok(i, node, ok);
      });
      egp.set_err_handler([this, i, node](const core::ErrMessage& err) {
        on_err(i, node, err);
      });
    }
  }
}

std::uint32_t SwapService::request(const E2eRequest& request) {
  return this->request(request, net_.path(request.src, request.dst));
}

std::size_t SwapService::num_links() const noexcept {
  return net_.num_links();
}

std::size_t SwapService::num_nodes() const noexcept {
  return net_.num_nodes();
}

std::pair<std::uint32_t, std::uint32_t> SwapService::endpoints(
    std::size_t link) const {
  return net_.endpoints(link);
}

core::Link::RateEstimate SwapService::estimate_link(std::size_t link,
                                                    double floor) {
  return net_.link(link).estimate_k_create(floor);
}

double SwapService::link_delay_s(std::size_t link) const {
  return sim::to_seconds(net_.link(link).scenario().delay_a_to_b());
}

core::Link::TestRoundEstimate SwapService::measured_estimate(
    std::size_t link) const {
  return net_.link(link).test_round_estimate();
}

std::uint32_t SwapService::request(const E2eRequest& request,
                                   const std::vector<Hop>& route,
                                   std::span<const double> hop_floors) {
  if (request.src == request.dst) {
    throw std::invalid_argument("SwapService: src == dst");
  }
  if (route.empty()) {
    throw std::invalid_argument("SwapService: empty route");
  }
  if (!hop_floors.empty() && hop_floors.size() != route.size()) {
    throw std::invalid_argument(
        "SwapService: hop_floors must match the route length");
  }
  for (const Hop& hop : route) {
    if (hop.link >= net_.num_links()) {
      throw std::invalid_argument("SwapService: route names unknown link");
    }
  }
  if (net_.hop_entry(route.front()) != request.src ||
      net_.hop_exit(route.back()) != request.dst) {
    throw std::invalid_argument(
        "SwapService: route does not join the request's endpoints");
  }
  for (std::size_t i = 0; i + 1 < route.size(); ++i) {
    if (net_.hop_exit(route[i]) != net_.hop_entry(route[i + 1])) {
      throw std::invalid_argument("SwapService: route is not contiguous");
    }
  }
  // Simple walks only: a route revisiting a node (and so possibly a
  // link) would run concurrent CREATEs over one physical link for one
  // request — a state the swap cascade was never designed for.
  std::vector<std::uint32_t> visited;
  visited.reserve(route.size() + 1);
  for (const Hop& hop : route) visited.push_back(net_.hop_entry(hop));
  visited.push_back(request.dst);
  for (std::size_t i = 0; i < visited.size(); ++i) {
    for (std::size_t j = i + 1; j < visited.size(); ++j) {
      if (visited[i] == visited[j]) {
        throw std::invalid_argument(
            "SwapService: route revisits node " +
            std::to_string(visited[i]));
      }
    }
  }

  RequestState rs;
  rs.id = next_request_id_++;
  rs.req = request;
  rs.submitted = request.submitted_at >= 0 ? request.submitted_at : now();
  rs.admitted = now();

  rs.hops.reserve(route.size());
  const double link_floor = request.effective_link_floor();
  for (std::size_t i = 0; i < route.size(); ++i) {
    const Hop& hop = route[i];
    CreateRequest cr;
    cr.remote_node_id = net_.hop_exit(hop);
    cr.type = RequestType::kCreateKeep;
    cr.num_pairs = request.num_pairs;
    cr.min_fidelity = !hop_floors.empty() && hop_floors[i] > 0.0
                          ? hop_floors[i]
                          : link_floor;
    cr.max_time = request.max_time;
    cr.priority = Priority::kNetworkLayer;
    cr.purpose_id = request.purpose_id;
    cr.consecutive = true;  // swap as soon as every hop has one pair
    cr.store_in_memory = request.store_in_memory;

    HopState hs;
    hs.hop = hop;
    const std::uint32_t entry = net_.hop_entry(hop);
    hs.create_id = net_.egp_at(hop.link, entry).create(cr);
    if (tracer_) {
      // Hops of one request overlap in time, so they are async spans
      // (matched by cat + id), not lane spans.
      hs.span_id = tracer_->async_begin(
          request.trace_id, "hop", "hop", now(),
          {obs::Tracer::num_arg("link",
                                static_cast<std::uint64_t>(hop.link)),
           obs::Tracer::num_arg("from", static_cast<std::uint64_t>(entry)),
           obs::Tracer::num_arg(
               "to", static_cast<std::uint64_t>(net_.hop_exit(hop)))});
    }
    by_create_[{hop.link, entry, hs.create_id}] = {rs.id, rs.hops.size()};
    if (edge_stats_) edge_stats_->on_attempt(hop.link, request.num_pairs);
    rs.hops.push_back(std::move(hs));
  }

  if (collector_) {
    if (request.resubmission_of != 0) {
      collector_->record_resubmit(request.src, request.resubmission_of,
                                  rs.id, Priority::kNetworkLayer,
                                  request.num_pairs, rs.submitted);
    } else {
      collector_->record_create(request.src, rs.id,
                                Priority::kNetworkLayer,
                                request.num_pairs, now());
    }
  }
  if (request.resubmission_of != 0) ++stats_.resubmissions;
  ++stats_.requests;
  const std::uint32_t id = rs.id;
  requests_.emplace(id, std::move(rs));
  return id;
}

void SwapService::on_ok(std::size_t link, std::uint32_t node,
                        const OkMessage& ok) {
  const auto it = by_create_.find({link, ok.origin_node, ok.create_id});
  if (it == by_create_.end()) {
    ++stats_.unclaimed_oks;
    if (on_unclaimed_) {
      on_unclaimed_(link, node, ok);
    } else if (!ok.is_measure_directly) {
      // Default policy: a pair nobody asked for must not pin device
      // memory forever.
      net_.link(link).egp(node).release_delivered(ok);
    }
    return;
  }

  const auto [request_id, hop_index] = it->second;
  RequestState& rs = requests_.at(request_id);
  HopState& hs = rs.hops.at(hop_index);

  PartialPair& partial = hs.partial[ok.ent_id.seq_mhp];
  const auto [node_a, node_b] = net_.endpoints(link);
  (void)node_b;
  (node == node_a ? partial.a : partial.b) = ok;
  if (!partial.a || !partial.b) return;

  hs.ready.push_back(MatchedPair{link, *partial.a, *partial.b});
  hs.partial.erase(ok.ent_id.seq_mhp);
  if (tracer_) {
    tracer_->async_instant(
        hs.span_id, rs.req.trace_id, "hop", "pair_matched", now(),
        {obs::Tracer::num_arg(
            "seq", static_cast<std::uint64_t>(ok.ent_id.seq_mhp))});
  }
  try_launch(rs);
}

void SwapService::try_launch(RequestState& rs) {
  while (rs.launched < rs.req.num_pairs) {
    bool all_ready = true;
    for (const HopState& hs : rs.hops) {
      if (hs.ready.empty()) {
        all_ready = false;
        break;
      }
    }
    if (!all_ready) return;

    std::vector<MatchedPair> pairs;
    pairs.reserve(rs.hops.size());
    for (HopState& hs : rs.hops) {
      pairs.push_back(hs.ready.front());
      hs.ready.pop_front();
    }
    ++rs.launched;
    stats_.link_pairs_consumed += pairs.size();

    // Run the cascade from a fresh event: OK handlers fire in the
    // middle of EGP processing, and the swap mutates device memory.
    const std::uint32_t id = rs.id;
    const sim::SimTime launched_at = now();
    schedule_in(
        0,
        [this, id, launched_at, moved = std::move(pairs)]() mutable {
          run_cascade(id, std::move(moved), launched_at);
        },
        "swap.cascade");
  }
}

sim::SimTime SwapService::correction_delay(const RequestState& rs) {
  // Swap outcomes announced at the first intermediate node travel the
  // rest of the route to dst; that node's announcement dominates.
  sim::SimTime delay = 0;
  for (std::size_t i = 1; i < rs.hops.size(); ++i) {
    delay += net_.link(rs.hops[i].hop.link).scenario().delay_a_to_b();
  }
  return delay;
}

void SwapService::run_cascade(std::uint32_t request_id,
                              std::vector<MatchedPair> pairs,
                              sim::SimTime launched_at) {
  const auto rit = requests_.find(request_id);
  if (rit == requests_.end()) {
    // The request failed between launch and this event: nothing to
    // swap for anymore, return every held qubit to its EGP.
    for (const MatchedPair& p : pairs) {
      const auto [node_a, node_b] = net_.endpoints(p.link);
      net_.link(p.link).egp(node_a).release_delivered(p.a);
      net_.link(p.link).egp(node_b).release_delivered(p.b);
    }
    return;
  }
  RequestState& rs = rit->second;
  quantum::QuantumRegistry& reg = net_.registry();

  // End qubits of the (future) end-to-end pair.
  const Hop& first = rs.hops.front().hop;
  const Hop& last = rs.hops.back().hop;
  const OkMessage src_ok = near_ok(first, pairs.front());
  const OkMessage dst_ok = far_ok(last, pairs.back());

  // Left-to-right swap cascade. Invariant: after step i, (src qubit,
  // far qubit of hop i) is a |Psi+> pair (delivered K pairs are Psi+;
  // the corrections below restore the frame after every swap) — so the
  // end-to-end pair lands on (src_ok.qubit, dst_ok.qubit).
  int swaps = 0;
  for (std::size_t i = 1; i < rs.hops.size(); ++i) {
    const Hop& left = rs.hops[i - 1].hop;
    const Hop& right = rs.hops[i].hop;
    const std::uint32_t node = net_.hop_exit(left);

    const OkMessage left_ok = far_ok(left, pairs[i - 1]);
    const OkMessage right_near = near_ok(right, pairs[i]);
    const OkMessage right_far = far_ok(right, pairs[i]);
    const QubitId control = left_ok.qubit;   // left pair's half here
    const QubitId target = right_near.qubit;  // right pair's half here

    // Bring decoherence up to date on everything the swap touches.
    net_.link(left.link).device(node).touch(control);
    net_.link(right.link).device(node).touch(target);
    net_.link(right.link)
        .device(net_.hop_exit(right))
        .touch(right_far.qubit);

    // Bell measurement across the node's two halves (closed-form
    // entanglement swap on structured backends; the explicit CNOT + H
    // + Z/Z circuit on the dense one).
    const auto [m1, m2] = reg.bell_measure(control, target);

    // Conditional corrections on the right pair's far half: X for the
    // Psi+ -> Phi+ frame offset, then the outcome-dependent Paulis
    // (same table as examples/repeater_swap_nl.cpp). They are applied
    // instantly with simulator privilege; the classical announcement
    // latency is charged to the delivery below instead.
    const QubitId far_q[] = {right_far.qubit};
    if (m2 == 0) reg.apply_unitary(gates::x(), far_q);  // X * X^m2
    if (m1 == 1) reg.apply_unitary(gates::z(), far_q);

    // The measured halves are spent: hand them back to their EGPs.
    net_.link(left.link).egp(node).release_delivered(left_ok);
    net_.link(right.link).egp(node).release_delivered(right_near);

    ++swaps;
    ++stats_.swaps;
    if (edge_stats_) edge_stats_->on_swap(node);
  }

  E2eOk ok;
  ok.request_id = rs.id;
  ok.src = rs.req.src;
  ok.dst = rs.req.dst;
  ok.total_pairs = rs.req.num_pairs;  // pair_index assigned at delivery
  ok.qubit_src = src_ok.qubit;
  ok.qubit_dst = dst_ok.qubit;
  ok.submit_time = rs.submitted;
  ok.swaps = swaps;
  ok.link_src = first.link;
  ok.link_dst = last.link;
  ok.ok_src = src_ok;
  ok.ok_dst = dst_ok;

  // Deliver after the swap outcomes could classically reach dst; the
  // pair keeps decohering while the announcements are in flight.
  const sim::SimTime cascade_at = now();
  schedule_in(correction_delay(rs), [this, ok, launched_at,
                                     cascade_at]() mutable {
    const auto it = requests_.find(ok.request_id);
    if (it == requests_.end()) {
      // The request failed (and reported E2eErr) while this
      // announcement was in flight; delivering now would contradict
      // the error, so reclaim the orphaned pair instead.
      release(ok);
      return;
    }
    net_.link(ok.link_src).device(ok.src).touch(ok.qubit_src);
    net_.link(ok.link_dst).device(ok.dst).touch(ok.qubit_dst);
    const QubitId ends[] = {ok.qubit_src, ok.qubit_dst};
    ok.fidelity = net_.registry().fidelity(
        ends, bell::state_vector(bell::BellState::kPsiPlus));
    ok.deliver_time = now();
    ++stats_.pairs_delivered;

    RequestState& state = it->second;
    ok.pair_index = state.delivered++;
    if (collector_) {
      // Latency phase decomposition (ISSUE 8): admission -> first
      // full-route match (generation), match -> cascade executed
      // (swap), cascade -> classical announcement at dst (delivery).
      // Recorded before record_ok so a completing request's open entry
      // carries its phases into the slowest-request keeper.
      collector_->record_pair_phases(
          ok.src, ok.request_id,
          sim::to_seconds(launched_at - state.admitted),
          sim::to_seconds(cascade_at - launched_at),
          sim::to_seconds(now() - cascade_at));
    }
    if (edge_stats_) {
      for (const HopState& hs : state.hops) {
        edge_stats_->on_delivered_edge(hs.hop.link, ok.fidelity);
      }
      edge_stats_->on_delivered_pair(ok.src, ok.dst);
    }
    if (collector_) {
      OkMessage record;
      record.create_id = ok.request_id;
      record.origin_node = ok.src;
      record.pair_index = ok.pair_index;
      record.total_pairs = ok.total_pairs;
      record.qubit = ok.qubit_src;
      record.goodness = ok.fidelity;
      record.goodness_time = ok.deliver_time;
      record.create_time = ok.submit_time;
      collector_->record_ok(record, Priority::kNetworkLayer, now(),
                            ok.fidelity);
    }
    if (tracer_) {
      tracer_->instant(
          state.req.trace_id, "request", "deliver", now(),
          {obs::Tracer::num_arg("pair",
                                static_cast<std::uint64_t>(ok.pair_index)),
           obs::Tracer::num_arg("fidelity", ok.fidelity),
           obs::Tracer::num_arg("swaps",
                                static_cast<std::uint64_t>(ok.swaps))});
    }
    const bool done = state.delivered >= state.req.num_pairs;
    if (on_deliver_) {
      on_deliver_(ok);
    } else {
      // Nobody will ever call release(): same policy as unclaimed OKs —
      // a pair nobody consumes must not pin device memory forever.
      release(ok);
    }
    if (done) erase_request(ok.request_id);
  }, "swap.deliver");
}

void SwapService::on_err(std::size_t link, std::uint32_t node,
                         const core::ErrMessage& err) {
  (void)node;
  // Exact-match attribution only. The EGP resolves ERRs to the
  // CREATE's origin while the request is live (Egp::handle_expire), so
  // the only ERRs that miss here are duplicates for already-resolved
  // requests — and guessing the opposite endpoint instead would kill
  // an innocent request whenever per-EGP create ids collide across the
  // link's two ends.
  const auto find_create = [this, link, &err] {
    return by_create_.find({link, err.origin_node, err.create_id});
  };

  if (err.error == core::EgpError::kExpired) {
    if (collector_) collector_->record_err(err);
    // (0,0) is the EGP's whole-request expiry; the CREATE is gone from
    // the link queue, so the end-to-end request can never complete.
    if (err.seq_low == 0 && err.seq_high == 0) {
      const auto it = find_create();
      if (tracer_) {
        // Attribute to the owning request's lane; orphan ERRs go to
        // the global lane (trace 0).
        tracer_->instant(
            it != by_create_.end()
                ? requests_.at(it->second.first).req.trace_id
                : obs::TraceId{0},
            "egp", "expired", now(),
            {obs::Tracer::num_arg("link", static_cast<std::uint64_t>(link))});
      }
      if (it != by_create_.end()) {
        fail_request(requests_.at(it->second.first), link,
                     core::EgpError::kExpired);
      }
      return;
    }
    // Sequence-gap revokes may arrive with create_id 0 (the EGP cannot
    // always attribute a lost-REPLY gap to one request), so sweep the
    // revoked midpoint range out of every request using this link.
    // Already-swapped pairs can't be unswapped; their damage shows up
    // in measured fidelity. A request that lost a pair this way can
    // never refill it (the link-layer CREATE already counted it as
    // done), so fail it rather than leave it wedged open.
    std::vector<std::uint32_t> ids;
    ids.reserve(requests_.size());
    for (const auto& [id, rs] : requests_) ids.push_back(id);
    for (const std::uint32_t id : ids) {
      const auto rit = requests_.find(id);
      if (rit == requests_.end()) continue;
      if (drop_revoked(rit->second, link, err.seq_low, err.seq_high) > 0) {
        if (tracer_) {
          tracer_->instant(rit->second.req.trace_id, "egp", "revoked", now(),
                           {obs::Tracer::num_arg(
                               "link", static_cast<std::uint64_t>(link))});
        }
        fail_request(rit->second, link, core::EgpError::kExpired);
      }
    }
    return;
  }

  const auto it = find_create();
  if (it == by_create_.end()) {
    if (tracer_) {
      tracer_->instant(
          0, "egp", "error", now(),
          {obs::Tracer::str_arg("error", core::egp_error_name(err.error)),
           obs::Tracer::num_arg("link", static_cast<std::uint64_t>(link))});
    }
    return;
  }
  RequestState& rs = requests_.at(it->second.first);
  if (collector_) {
    core::ErrMessage e2e = err;
    e2e.create_id = rs.id;
    e2e.origin_node = rs.req.src;
    collector_->record_err(e2e);
  }
  if (tracer_) {
    tracer_->instant(
        rs.req.trace_id, "egp", "error", now(),
        {obs::Tracer::str_arg("error", core::egp_error_name(err.error)),
         obs::Tracer::num_arg("link", static_cast<std::uint64_t>(link))});
  }
  fail_request(rs, link, err.error);
}

std::size_t SwapService::drop_revoked(RequestState& rs, std::size_t link,
                                      std::uint32_t seq_low,
                                      std::uint32_t seq_high) {
  const auto [node_a, node_b] = net_.endpoints(link);
  core::Link& l = net_.link(link);
  const auto revoked = [&](std::uint32_t seq) {
    return seq >= seq_low && seq < seq_high;
  };
  std::size_t dropped = 0;
  for (HopState& hs : rs.hops) {
    if (hs.hop.link != link) continue;
    // A revoked OK's qubit is still pinned at the node that received
    // it; hand every dropped half back (cf. WorkloadDriver::sweep_stale).
    for (auto it = hs.partial.begin(); it != hs.partial.end();) {
      if (revoked(it->first)) {
        if (it->second.a) l.egp(node_a).release_delivered(*it->second.a);
        if (it->second.b) l.egp(node_b).release_delivered(*it->second.b);
        it = hs.partial.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    for (auto it = hs.ready.begin(); it != hs.ready.end();) {
      if (revoked(it->a.ent_id.seq_mhp)) {
        l.egp(node_a).release_delivered(it->a);
        l.egp(node_b).release_delivered(it->b);
        it = hs.ready.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

void SwapService::fail_request(RequestState& rs, std::size_t link,
                               core::EgpError error) {
  ++stats_.errors;
  // Return every pair half we are still holding, and retract the
  // sibling hops' link-layer CREATEs: an abandoned end-to-end request
  // must not keep its other hops generating pairs that would only
  // surface as unclaimed OKs (wasted link throughput).
  for (HopState& hs : rs.hops) {
    const auto [node_a, node_b] = net_.endpoints(hs.hop.link);
    core::Link& l = net_.link(hs.hop.link);
    for (const MatchedPair& p : hs.ready) {
      l.egp(node_a).release_delivered(p.a);
      l.egp(node_b).release_delivered(p.b);
    }
    for (const auto& [seq, partial] : hs.partial) {
      if (partial.a) l.egp(node_a).release_delivered(*partial.a);
      if (partial.b) l.egp(node_b).release_delivered(*partial.b);
    }
    net_.egp_at(hs.hop.link, net_.hop_entry(hs.hop))
        .cancel_create(hs.create_id);
  }
  if (on_error_) on_error_(E2eErr{rs.id, error, link});
  erase_request(rs.id);
}

void SwapService::erase_request(std::uint32_t id) {
  const auto it = requests_.find(id);
  if (it == requests_.end()) return;
  for (const HopState& hs : it->second.hops) {
    by_create_.erase(
        {hs.hop.link, net_.hop_entry(hs.hop), hs.create_id});
    if (tracer_ && hs.span_id != 0) {
      tracer_->async_end(hs.span_id, it->second.req.trace_id, "hop", "hop",
                         now());
    }
  }
  requests_.erase(it);
}

void SwapService::release(const E2eOk& ok) {
  net_.link(ok.link_src).egp(ok.src).release_delivered(ok.ok_src);
  net_.link(ok.link_dst).egp(ok.dst).release_delivered(ok.ok_dst);
}

}  // namespace qlink::netlayer
