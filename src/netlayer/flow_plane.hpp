#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "netlayer/plane.hpp"
#include "sim/random.hpp"
#include "sim/sharded_engine.hpp"
#include "sim/simulator.hpp"

/// \file flow_plane.hpp
/// The flow-level fast path: an EntanglementPlane that replaces
/// per-attempt MHP event churn with sampled inter-delivery times drawn
/// from the link's FEU-calibrated success model.
///
/// Model. A link operated at CREATE floor F succeeds each attempt slot
/// with probability p_succ (the herald model at the FEU's advised
/// bright-state alpha); slots last slot_s = pair_time_s * p_succ
/// seconds, so the sampled geometric attempt count times slot_s has
/// mean pair_time_s — exactly the FEU's expected time per pair that
/// the full-detail simulation realises in steady state. Per request,
/// every hop generates its pairs sequentially (one device per link),
/// starting at max(submit time, the link's previous completion) —
/// links serve requests FIFO, the flow analogue of the MHP's
/// single-attempt pipeline. Pair j is delivered when its slowest hop
/// has produced j+1 pairs, plus the route's summed one-way classical
/// delays (swap outcomes propagating to the destination). Its
/// fidelity is the Bell-diagonal swap composition of the per-hop
/// operating points (cf. routing::PathSelector::estimated_fidelity) —
/// the model estimate, not a sampled value.
///
/// Validity conditions (asserted by the oracle test,
/// tests/test_flow_plane.cpp): links in steady state (no EXPIRE storms
/// — the flow plane never fails a request), per-link concurrency
/// bounded by admission control (the Router's reservation table), and
/// request latency dominated by pair generation rather than
/// memory-decoherence effects. Outside those conditions, use the
/// full-detail SwapService.
///
/// One scheduled event per delivered pair, O(1) retained state per
/// in-flight request, no quantum state: this is what lets
/// bench_workload_scale push 1M+ requests through 1000+ nodes in
/// minutes of wall time.

namespace qlink::netlayer {

/// A link's flow-level operating menu, measured once from a standalone
/// full-detail core::Link (the same hardware model the FEU advises
/// from) over descending CREATE-floor set-points.
struct FlowCalibration {
  struct Entry {
    double floor = 0.0;
    bool feasible = false;
    double fidelity = 0.0;     // estimated delivered fidelity at floor
    double pair_time_s = 0.0;  // FEU expected time per pair
    double p_succ = 0.0;       // per-slot herald success probability
  };
  std::vector<Entry> menu;  // descending floors
  /// One-way classical delay of the link, seconds.
  double delay_s = 0.0;

  /// Probe `link`'s FEU at every floor of `floor_menu` (descending
  /// quality set-points, as Router::annotate_from_network).
  static FlowCalibration from_link(core::Link& link,
                                   std::span<const double> floor_menu);

  /// The feasible entry operating at exactly `floor`, else the best
  /// feasible entry with floor <= requested, else nullptr.
  const Entry* lookup(double floor) const noexcept;
  /// First feasible entry (the highest quality set-point), nullptr if
  /// none.
  const Entry* best() const noexcept;
};

struct FlowPlaneConfig {
  /// Link i joins node ids edges[i].first (A side) / .second (B side).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  /// 0 infers max listed id + 1.
  std::size_t num_nodes = 0;
  /// Operating menu shared by every link (homogeneous hardware). Use
  /// `calibrations` instead for heterogeneous networks.
  FlowCalibration calibration;
  /// Per-link calibrations (heterogeneous); empty = use `calibration`
  /// for every link.
  std::vector<FlowCalibration> calibrations;
  /// Recorded like SwapService does full-detail: create at admission
  /// (the submit call; router queue wait is a separate admission-wait
  /// metric), one OK (+ phase decomposition) per delivered pair.
  /// Optional.
  metrics::Collector* collector = nullptr;
  std::uint64_t seed = 1;
  /// Bind the plane to one shard of an existing engine instead of
  /// owning a private single-shard one (same contract as
  /// NetworkConfig::engine/shard: the engine must outlive the plane,
  /// and everything this plane schedules stays on that shard).
  sim::ShardedEngine* engine = nullptr;
  std::size_t shard = 0;
};

class FlowPlane : public EntanglementPlane {
 public:
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t pairs_delivered = 0;
    std::uint64_t attempts = 0;  // sampled generation slots, all hops
  };

  explicit FlowPlane(FlowPlaneConfig config);

  // --- EntanglementPlane ---
  sim::EngineRef engine_ref() noexcept override {
    return engine_->ref(shard_);
  }
  sim::Simulator& simulator() noexcept override {
    return engine_->sim(shard_);
  }
  std::size_t num_links() const noexcept override { return edges_.size(); }
  std::size_t num_nodes() const noexcept override { return num_nodes_; }
  std::pair<std::uint32_t, std::uint32_t> endpoints(
      std::size_t link) const override {
    return edges_.at(link);
  }
  std::uint32_t submit(const E2eRequest& request,
                       const std::vector<Hop>& route,
                       std::span<const double> hop_floors = {}) override;
  void release(const E2eOk& ok) override {
    (void)ok;  // no device memory to free at flow level
  }
  void set_deliver_handler(DeliverFn fn) override {
    on_deliver_ = std::move(fn);
  }
  void set_error_handler(ErrorFn fn) override { on_error_ = std::move(fn); }
  void set_edge_stats(metrics::EdgeStats* stats) noexcept override {
    edge_stats_ = stats;
  }
  core::Link::RateEstimate estimate_link(std::size_t link,
                                         double floor) override;
  double link_delay_s(std::size_t link) const override {
    return calibration(link).delay_s;
  }
  core::Link::TestRoundEstimate measured_estimate(
      std::size_t link) const override {
    (void)link;
    return {};  // no live measurements: the router stays on the model
  }

  /// Advance the clock (mirrors QuantumNetwork::run_for so drivers
  /// treat both planes alike). When bound to a shared engine this
  /// drives every shard together.
  void run_for(sim::SimTime span) {
    engine_->run_until(simulator().now() + span);
  }
  void run_until(sim::SimTime t) { engine_->run_until(t); }

  const Stats& stats() const noexcept { return stats_; }
  const FlowCalibration& calibration(std::size_t link) const {
    return calibrations_.empty() ? calibration_ : calibrations_.at(link);
  }

 private:
  /// Sampled wall time for one pair on `link` at operating point
  /// `entry`: Geometric(p_succ) attempt slots of slot_s seconds each.
  sim::SimTime sample_pair_time(const FlowCalibration::Entry& entry,
                                std::size_t link);

  /// Private single-shard engine when the config does not bind one.
  std::unique_ptr<sim::ShardedEngine> owned_engine_;
  sim::ShardedEngine* engine_ = nullptr;
  std::size_t shard_ = 0;
  sim::Random random_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges_;
  std::size_t num_nodes_ = 0;
  FlowCalibration calibration_;
  std::vector<FlowCalibration> calibrations_;
  /// When each link finishes its last accepted generation job (FIFO
  /// service) — the only per-link mutable state.
  std::vector<sim::SimTime> next_free_;
  std::uint32_t next_request_id_ = 1;
  metrics::Collector* collector_ = nullptr;
  metrics::EdgeStats* edge_stats_ = nullptr;
  DeliverFn on_deliver_;
  ErrorFn on_error_;
  Stats stats_;
};

}  // namespace qlink::netlayer
