#include "obs/trace.hpp"

#include <cinttypes>

namespace qlink::obs {

namespace {

/// JSON-escape into `out` (quotes included).
void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Nanoseconds as decimal microseconds ("123.456"), exactly — the
/// Chrome format's ts/dur unit is microseconds, and an integer
/// nanosecond remainder keeps the rendering lossless and deterministic.
void append_us(std::string& out, sim::SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  out += buf;
}

void append_args(std::string& out, const std::vector<Tracer::Arg>& args) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ',';
    append_quoted(out, args[i].key);
    out += ':';
    out += args[i].value;
  }
  out += '}';
}

}  // namespace

Tracer::Arg Tracer::str_arg(std::string key, const std::string& value) {
  std::string rendered;
  append_quoted(rendered, value);
  return Arg{std::move(key), std::move(rendered)};
}

Tracer::Arg Tracer::num_arg(std::string key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return Arg{std::move(key), buf};
}

Tracer::Arg Tracer::num_arg(std::string key, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return Arg{std::move(key), buf};
}

void Tracer::complete(TraceId trace, const char* cat, const char* name,
                      sim::SimTime start, sim::SimTime end,
                      std::vector<Arg> args) {
  events_.push_back(Event{Phase::kComplete, trace, 0, cat, name, start,
                          end - start, std::move(args)});
}

void Tracer::instant(TraceId trace, const char* cat, const char* name,
                     sim::SimTime at, std::vector<Arg> args) {
  events_.push_back(
      Event{Phase::kInstant, trace, 0, cat, name, at, 0, std::move(args)});
}

std::uint64_t Tracer::async_begin(TraceId trace, const char* cat,
                                  const char* name, sim::SimTime at,
                                  std::vector<Arg> args) {
  const std::uint64_t id = next_async_id_++;
  events_.push_back(
      Event{Phase::kAsyncBegin, trace, id, cat, name, at, 0,
            std::move(args)});
  return id;
}

void Tracer::async_instant(std::uint64_t id, TraceId trace, const char* cat,
                           const char* name, sim::SimTime at,
                           std::vector<Arg> args) {
  events_.push_back(Event{Phase::kAsyncInstant, trace, id, cat, name, at, 0,
                          std::move(args)});
}

void Tracer::async_end(std::uint64_t id, TraceId trace, const char* cat,
                       const char* name, sim::SimTime at) {
  events_.push_back(Event{Phase::kAsyncEnd, trace, id, cat, name, at, 0, {}});
}

char Tracer::phase_char(Phase p) {
  switch (p) {
    case Phase::kComplete:
      return 'X';
    case Phase::kInstant:
      return 'i';
    case Phase::kAsyncBegin:
      return 'b';
    case Phase::kAsyncInstant:
      return 'n';
    case Phase::kAsyncEnd:
      return 'e';
  }
  return '?';
}

void Tracer::append_event(std::string& out, const Event& e, bool chrome) {
  char buf[64];
  out += "{\"name\":";
  append_quoted(out, e.name);
  out += ",\"cat\":";
  append_quoted(out, e.cat);
  out += ",\"ph\":\"";
  out += phase_char(e.phase);
  out += '"';
  if (chrome) {
    // The request's trace id is its lane: one Perfetto track per
    // request. Async hop spans group by (pid, cat, id).
    out += ",\"ts\":";
    append_us(out, e.ts);
    if (e.phase == Phase::kComplete) {
      out += ",\"dur\":";
      append_us(out, e.dur);
    }
    std::snprintf(buf, sizeof(buf), ",\"pid\":1,\"tid\":%" PRIu64, e.trace);
    out += buf;
    if (e.async_id != 0) {
      std::snprintf(buf, sizeof(buf), ",\"id\":%" PRIu64, e.async_id);
      out += buf;
    }
    if (e.phase == Phase::kInstant) out += ",\"s\":\"t\"";
  } else {
    std::snprintf(buf, sizeof(buf), ",\"trace\":%" PRIu64 ",\"t\":%" PRId64,
                  e.trace, e.ts);
    out += buf;
    if (e.phase == Phase::kComplete) {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%" PRId64, e.dur);
      out += buf;
    }
    if (e.async_id != 0) {
      std::snprintf(buf, sizeof(buf), ",\"id\":%" PRIu64, e.async_id);
      out += buf;
    }
  }
  if (!e.args.empty()) {
    out += ',';
    append_args(out, e.args);
  }
  out += '}';
}

std::string Tracer::chrome_json() const {
  std::string out = "{\"traceEvents\":[\n";
  // Name the one process so Perfetto shows "requests" instead of
  // "Process 1".
  out +=
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
      "\"args\":{\"name\":\"requests\"}}";
  for (const Event& e : events_) {
    out += ",\n";
    append_event(out, e, /*chrome=*/true);
  }
  out += "\n]}\n";
  return out;
}

std::string Tracer::jsonl() const {
  std::string out;
  for (const Event& e : events_) {
    append_event(out, e, /*chrome=*/false);
    out += '\n';
  }
  return out;
}

void Tracer::write_chrome_json(std::FILE* f) const {
  const std::string s = chrome_json();
  std::fwrite(s.data(), 1, s.size(), f);
}

void Tracer::write_jsonl(std::FILE* f) const {
  const std::string s = jsonl();
  std::fwrite(s.data(), 1, s.size(), f);
}

}  // namespace qlink::obs
