#pragma once

#include <string>

#include "metrics/collector.hpp"
#include "metrics/histogram.hpp"
#include "netlayer/swap_service.hpp"
#include "qstate/backend.hpp"
#include "routing/router.hpp"
#include "sim/simulator.hpp"

/// \file snapshot.hpp
/// One merged observability surface (ISSUE 6): everything a run knows
/// about itself — Collector distributions, Router and SwapService
/// counters, quantum-backend counters, and engine telemetry — rendered
/// as a single JSON object. Benches embed it under an "obs" key of
/// their --json output so every surface travels together; dashboards
/// and bench_diff read scalar percentiles straight out of it.
///
/// All sources are optional (null pointers are skipped), so the same
/// type serves single-link benches (no router) and routed ones.

namespace qlink::obs {

struct Snapshot {
  const metrics::Collector* collector = nullptr;
  const routing::Router::Stats* router = nullptr;
  const netlayer::SwapService::Stats* swap = nullptr;
  const qstate::BackendStats* backend = nullptr;
  const sim::Simulator* simulator = nullptr;

  /// The merged JSON object. Deterministic: fixed key order, "%.17g"
  /// doubles, and label stats sorted by label.
  std::string json() const;
};

/// A histogram's summary as a JSON object:
/// {"count":..,"mean":..,"p50":..,"p90":..,"p99":..,
///  "underflow":..,"overflow":..}.
std::string histogram_json(const metrics::Histogram& h);

}  // namespace qlink::obs
