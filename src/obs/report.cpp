#include "obs/report.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "metrics/collector.hpp"
#include "metrics/edge_stats.hpp"
#include "routing/graph.hpp"
#include "sim/simulator.hpp"

namespace qlink::obs {

namespace {

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

/// Fixed-precision decimal (%.*f, not %g): stable column widths and no
/// exponent notation in the tables.
std::string fmt_f(double v, int precision = 4) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void hist_row(std::string& out, const char* name,
              const metrics::Histogram& h) {
  out += "| ";
  out += name;
  out += " | " + fmt_u64(h.count());
  out += " | " + fmt_f(h.mean(), 6);
  out += " | " + fmt_f(h.p50(), 6);
  out += " | " + fmt_f(h.p90(), 6);
  out += " | " + fmt_f(h.p99(), 6);
  out += " | " + fmt_f(h.max(), 6);
  out += " |\n";
}

}  // namespace

std::string render_run_report(const sim::Simulator& simulator,
                              const metrics::EdgeStats& stats,
                              const metrics::Collector& collector,
                              const routing::Graph* graph,
                              const RunReportOptions& options) {
  const sim::SimTime now = simulator.now();
  const double elapsed_s = sim::to_seconds(now);

  std::string out;
  if (!options.title.empty()) {
    out += "### ";
    out += options.title;
    out += "\n\n";
  }

  // -- Summary ------------------------------------------------------------
  out += "| metric | value |\n|---|---|\n";
  out += "| sim time (s) | " + fmt_f(elapsed_s, 6) + " |\n";
  out += "| pairs delivered | " +
         fmt_u64(collector.total_pairs_delivered()) + " |\n";
  out += "| requests blocked | " + fmt_u64(collector.requests_blocked()) +
         " |\n";
  out += "| lease placements | " + fmt_u64(stats.lease_count()) + " |\n";
  out += "| CREATE attempt pairs | " + fmt_u64(stats.attempt_pairs()) +
         " |\n";
  out += "| swaps | " + fmt_u64(stats.swaps()) + " |\n";
  out += "| admission waits | " + fmt_u64(stats.admission_waits()) +
         " (sum " + fmt_f(stats.admission_wait_seconds(), 6) + " s) |\n";
  out += "\n";

  // -- Hot edges ------------------------------------------------------------
  struct Row {
    std::size_t edge = 0;
    double util = 0.0;
  };
  std::vector<Row> rows;
  for (std::size_t e = 0; e < stats.num_edges(); ++e) {
    const metrics::EdgeStats::EdgeCounters& c = stats.edge(e);
    const double util =
        elapsed_s > 0.0 ? stats.busy_seconds(e, now) / elapsed_s : 0.0;
    if (util <= 0.0 && c.leases == 0 && c.blocked == 0 && c.attempts == 0) {
      continue;
    }
    rows.push_back({e, util});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.util != b.util) return a.util > b.util;
    return a.edge < b.edge;
  });
  if (rows.size() > options.top_k) rows.resize(options.top_k);

  out += "**Hot edges** (by lease utilization)\n\n";
  out += "| edge | link | util | leases | blocked | attempts | deliveries "
         "| wait_s | fidelity |\n|---|---|---|---|---|---|---|---|---|\n";
  for (const Row& r : rows) {
    const metrics::EdgeStats::EdgeCounters& c = stats.edge(r.edge);
    out += "| " + fmt_u64(r.edge) + " | ";
    if (graph != nullptr) {
      const routing::Graph::Edge& ge = graph->edge(r.edge);
      out += fmt_u64(ge.a) + "-" + fmt_u64(ge.b);
    } else {
      out += "-";
    }
    out += " | " + fmt_f(r.util);
    out += " | " + fmt_u64(c.leases);
    out += " | " + fmt_u64(c.blocked);
    out += " | " + fmt_u64(c.attempts);
    out += " | " + fmt_u64(c.deliveries);
    out += " | " + fmt_f(c.admission_wait_s);
    out += " | " + fmt_f(c.fidelity.count() > 0 ? c.fidelity.mean() : 0.0);
    out += " |\n";
  }
  if (rows.empty()) out += "| - | - | - | - | - | - | - | - | - |\n";
  out += "\n";

  // -- Stall / contention analysis ----------------------------------------
  std::uint64_t edge_blocked = 0, max_edge_blocked = 0;
  std::size_t max_blocked_edge = 0;
  for (std::size_t e = 0; e < stats.num_edges(); ++e) {
    const std::uint64_t b = stats.edge(e).blocked;
    edge_blocked += b;
    if (b > max_edge_blocked) {
      max_edge_blocked = b;
      max_blocked_edge = e;
    }
  }
  out += "**Contention**: " + fmt_u64(collector.requests_blocked()) +
         " blocked requests, " + fmt_u64(edge_blocked) +
         " blocked-arrival edge footprints";
  if (max_edge_blocked > 0) {
    out += " (hottest: edge " + fmt_u64(max_blocked_edge) + " with " +
           fmt_u64(max_edge_blocked) + ")";
  }
  out += "; " + fmt_u64(collector.admission_steals()) + " steals, " +
         fmt_u64(collector.hol_holds()) + " HOL holds, " +
         fmt_u64(collector.deferrals()) + " deferrals.\n\n";

  // -- Phase decomposition --------------------------------------------------
  out += "**Latency phases** (seconds)\n\n";
  out += "| phase | count | mean | p50 | p90 | p99 | max |\n"
         "|---|---|---|---|---|---|---|\n";
  for (std::size_t p = 0; p < metrics::kNumPhases; ++p) {
    const auto phase = static_cast<metrics::Phase>(p);
    hist_row(out, metrics::phase_name(phase), collector.phase_hist(phase));
  }
  out += "\n";

  const auto& slowest = collector.slowest_requests();
  if (!slowest.empty()) {
    out += "**Slowest requests**\n\n";
    out += "| origin | id | total_s";
    for (std::size_t p = 0; p < metrics::kNumPhases; ++p) {
      out += " | ";
      out += metrics::phase_name(static_cast<metrics::Phase>(p));
    }
    out += " |\n|---|---|---";
    for (std::size_t p = 0; p < metrics::kNumPhases; ++p) out += "|---";
    out += "|\n";
    const std::size_t n = std::min(options.slowest, slowest.size());
    for (std::size_t i = 0; i < n; ++i) {
      const metrics::Collector::SlowRequest& s = slowest[i];
      out += "| " + fmt_u64(s.origin) + " | " + fmt_u64(s.id) + " | " +
             fmt_f(s.total_s, 6);
      for (std::size_t p = 0; p < metrics::kNumPhases; ++p) {
        out += " | " + fmt_f(s.phase_s[p], 6);
      }
      out += " |\n";
    }
    out += "\n";
  }

  return out;
}

}  // namespace qlink::obs
