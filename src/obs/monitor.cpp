#include "obs/monitor.hpp"

#include <algorithm>
#include <cinttypes>

#include "obs/trace.hpp"
#include "routing/router.hpp"
#include "sim/simulator.hpp"

namespace qlink::obs {

namespace {

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_num(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_field(std::string& out, const char* key, double v) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, v);
}

void append_field(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, v);
}

/// Per-interval histogram delta: just the two fields a live reader
/// needs (the full distribution stays in the end-of-run Snapshot).
void append_hist_delta(std::string& out, const char* key,
                       const metrics::Histogram& delta) {
  out += '"';
  out += key;
  out += "\":{";
  append_field(out, "count", delta.count());
  out += ',';
  append_field(out, "p99", delta.p99());
  out += ',';
  // delta_since carries the stream-cumulative extremes (interval-local
  // ones are not derivable from two snapshots) — exact even for values
  // the bins clamped.
  append_field(out, "min", delta.min());
  out += ',';
  append_field(out, "max", delta.max());
  out += '}';
}

}  // namespace

Monitor::Monitor(const sim::Simulator& simulator,
                 const metrics::Collector& collector, MonitorConfig config)
    : sim_(simulator), collector_(collector), config_(std::move(config)) {
  if (config_.interval <= 0) {
    config_.interval = sim::duration::milliseconds(100);
  }
  start_t_ = sim_.now();
  last_t_ = start_t_;
  prev_ = sample();
}

Monitor::Cumulative Monitor::sample() const {
  Cumulative c;
  c.deliveries = collector_.total_pairs_delivered();
  c.events = sim_.events_processed();
  if (router_ != nullptr) {
    c.submitted = router_->stats().submitted;
    c.completed = router_->stats().completed;
    c.failed = router_->stats().failed;
  }
  c.request_latency = collector_.request_latency_hist();
  c.pair_latency = collector_.pair_latency_hist();
  c.admission_wait = collector_.admission_wait_hist();
  return c;
}

std::uint64_t Monitor::completed_total() const {
  if (router_ != nullptr) return router_->stats().completed;
  std::uint64_t done = 0;
  for (const auto p : {core::Priority::kNetworkLayer,
                       core::Priority::kCreateKeep,
                       core::Priority::kMeasureDirectly}) {
    done += collector_.kind(p).requests_completed;
  }
  return done;
}

std::size_t Monitor::backlog() const {
  if (router_ == nullptr) return 0;
  return router_->reservations().blocked() + router_->deferred_pending();
}

void Monitor::poll() {
  if (finished_) return;
  const sim::SimTime now = sim_.now();
  if (now - last_t_ < config_.interval) return;
  // Coalesce every fully elapsed interval into one record stamped at
  // the last crossed boundary; the remainder stays open.
  const sim::SimTime span =
      ((now - last_t_) / config_.interval) * config_.interval;
  emit(last_t_ + span);
}

void Monitor::finish() {
  if (finished_) return;
  const sim::SimTime now = sim_.now();
  if (now > last_t_) emit(now);

  std::string& out = jsonl_;
  out += '{';
  if (!config_.run.empty()) {
    out += "\"run\":\"";
    out += config_.run;
    out += "\",";
  }
  out += "\"final\":true,";
  append_field(out, "t", static_cast<std::uint64_t>(last_t_));
  out += ',';
  append_field(out, "intervals", intervals_);
  out += ',';
  append_field(out, "stalled_intervals", stalled_intervals_);
  out += ',';
  append_field(out, "peak_backlog", peak_backlog_);
  out += ',';
  append_field(out, "deliveries", total_deliveries_);
  out += ',';
  append_field(out, "events", total_events_);
  out += ',';
  append_field(out, "open_requests",
               static_cast<std::uint64_t>(collector_.open_requests()));
  const auto oldest = collector_.oldest_open_created();
  out += ',';
  append_field(out, "oldest_open_age_s",
               oldest ? sim::to_seconds(last_t_ - *oldest) : 0.0);
  out += "}\n";
  finished_ = true;
}

void Monitor::emit(sim::SimTime t) {
  const Cumulative cur = sample();
  const sim::SimTime dt = t - last_t_;
  const double dt_s = sim::to_seconds(dt);
  const std::uint64_t deliveries = cur.deliveries - prev_.deliveries;
  const std::uint64_t events = cur.events - prev_.events;
  const std::uint64_t backlog_now = backlog();
  const auto oldest = collector_.oldest_open_created();
  const double oldest_age_s =
      oldest && *oldest < t ? sim::to_seconds(t - *oldest) : 0.0;
  // A starved interval is a full watch interval with zero deliveries
  // while admitted-or-bookable work waits; trailing partial intervals
  // are exempt so a short tail cannot fake one. The watchdog only
  // flags once stall_consecutive starved intervals run back-to-back
  // (a coalesced record contributes each full interval it covers).
  const bool starved =
      dt >= config_.interval && deliveries == 0 && backlog_now > 0;
  if (starved) {
    stall_run_ += static_cast<std::uint64_t>(dt / config_.interval);
  } else {
    stall_run_ = 0;
  }
  const bool stalled = starved && stall_run_ >= config_.stall_consecutive;

  std::string& out = jsonl_;
  out += '{';
  if (!config_.run.empty()) {
    out += "\"run\":\"";
    out += config_.run;
    out += "\",";
  }
  append_field(out, "i", intervals_);
  out += ',';
  append_field(out, "t", static_cast<std::uint64_t>(t));
  out += ',';
  append_field(out, "dt", static_cast<std::uint64_t>(dt));
  out += ',';
  append_field(out, "deliveries", deliveries);
  out += ',';
  append_field(out, "deliveries_per_s",
               dt_s > 0.0 ? static_cast<double>(deliveries) / dt_s : 0.0);
  out += ',';
  append_field(out, "events", events);
  out += ',';
  append_field(out, "events_per_s",
               dt_s > 0.0 ? static_cast<double>(events) / dt_s : 0.0);
  out += ',';
  append_field(out, "heap",
               static_cast<std::uint64_t>(sim_.pending()));
  out += ',';
  append_field(out, "heap_hw",
               static_cast<std::uint64_t>(sim_.heap_high_water()));
  out += ',';
  append_field(out, "open_requests",
               static_cast<std::uint64_t>(collector_.open_requests()));
  out += ',';
  append_field(out, "oldest_open_age_s", oldest_age_s);
  out += ',';
  append_hist_delta(out, "request_latency",
                    cur.request_latency.delta_since(prev_.request_latency));
  out += ',';
  append_hist_delta(out, "pair_latency",
                    cur.pair_latency.delta_since(prev_.pair_latency));
  out += ',';
  append_hist_delta(out, "admission_wait",
                    cur.admission_wait.delta_since(prev_.admission_wait));
  if (router_ != nullptr) {
    out += ',';
    append_field(out, "submitted", cur.submitted - prev_.submitted);
    out += ',';
    append_field(out, "completed", cur.completed - prev_.completed);
    out += ',';
    append_field(out, "failed", cur.failed - prev_.failed);
    out += ',';
    append_field(out, "backlog", backlog_now);
  }
  out += ",\"stalled\":";
  out += stalled ? "true" : "false";
  if (config_.target_requests > 0) {
    const std::uint64_t done = completed_total();
    out += ',';
    append_field(out, "progress",
                 static_cast<double>(done) /
                     static_cast<double>(config_.target_requests));
    out += ",\"eta_s\":";
    const double elapsed_s = sim::to_seconds(t - start_t_);
    if (done == 0 || elapsed_s <= 0.0) {
      out += "null";
    } else if (done >= config_.target_requests) {
      append_num(out, 0.0);
    } else {
      const double rate = static_cast<double>(done) / elapsed_s;
      append_num(out,
                 static_cast<double>(config_.target_requests - done) / rate);
    }
  }
  out += "}\n";

  if (stalled) {
    ++stalled_intervals_;
    if (config_.tracer != nullptr) {
      config_.tracer->instant(
          0, "monitor", "warn", t,
          {Tracer::num_arg("backlog", backlog_now),
           Tracer::num_arg("oldest_open_age_s", oldest_age_s)});
    }
  }
  ++intervals_;
  peak_backlog_ = std::max(peak_backlog_, backlog_now);
  total_deliveries_ += deliveries;
  total_events_ += events;
  last_t_ = t;
  prev_ = cur;
}

void Monitor::write_jsonl(std::FILE* f) const {
  std::fwrite(jsonl_.data(), 1, jsonl_.size(), f);
}

}  // namespace qlink::obs
