#include "obs/netstate.hpp"

#include <algorithm>
#include <cinttypes>

#include "metrics/collector.hpp"
#include "routing/graph.hpp"
#include "sim/simulator.hpp"

namespace qlink::obs {

namespace {

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_num(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_field(std::string& out, const char* key, double v) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, v);
}

void append_field(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, v);
}

}  // namespace

NetState::NetState(const sim::Simulator& simulator,
                   const metrics::EdgeStats& stats, NetStateConfig config)
    : sim_(simulator), stats_(stats), config_(std::move(config)) {
  if (config_.interval <= 0) {
    config_.interval = sim::duration::milliseconds(100);
  }
  if (config_.top_k == 0) config_.top_k = 8;
  start_t_ = sim_.now();
  last_t_ = start_t_;
  prev_ = sample(start_t_);
  start_busy_s_.reserve(prev_.size());
  for (const EdgeSnap& s : prev_) start_busy_s_.push_back(s.busy_s);
}

std::vector<NetState::EdgeSnap> NetState::sample(sim::SimTime t) const {
  std::vector<EdgeSnap> snaps(stats_.num_edges());
  for (std::size_t e = 0; e < snaps.size(); ++e) {
    const metrics::EdgeStats::EdgeCounters& c = stats_.edge(e);
    EdgeSnap& s = snaps[e];
    s.busy_s = stats_.busy_seconds(e, t);
    s.leases = c.leases;
    s.blocked = c.blocked;
    s.attempts = c.attempts;
    s.deliveries = c.deliveries;
  }
  return snaps;
}

void NetState::poll() {
  if (finished_) return;
  const sim::SimTime now = sim_.now();
  if (now - last_t_ < config_.interval) return;
  const sim::SimTime span =
      ((now - last_t_) / config_.interval) * config_.interval;
  emit(last_t_ + span);
}

void NetState::emit(sim::SimTime t) {
  const std::vector<EdgeSnap> cur = sample(t);
  const sim::SimTime dt = t - last_t_;
  const double dt_s = sim::to_seconds(dt);

  struct HotEdge {
    std::size_t edge = 0;
    double util = 0.0;
    std::uint64_t leases = 0;
    std::uint64_t blocked = 0;
    std::uint64_t attempts = 0;
    std::uint64_t deliveries = 0;
  };
  std::vector<HotEdge> active;
  std::uint64_t leases = 0, blocked = 0, attempts = 0, deliveries = 0;
  double util_sum = 0.0, util_max = 0.0;
  for (std::size_t e = 0; e < cur.size(); ++e) {
    HotEdge h;
    h.edge = e;
    // busy is a union of windows clipped to the interval, so the ratio
    // is <= 1 up to double round-off: the two cumulative busy_s values
    // were converted separately, and their difference can exceed dt_s
    // by an ulp. Clamp so the emitted util is in [0, 1] exactly.
    h.util = dt_s > 0.0
                 ? std::min(1.0, (cur[e].busy_s - prev_[e].busy_s) / dt_s)
                 : 0.0;
    h.leases = cur[e].leases - prev_[e].leases;
    h.blocked = cur[e].blocked - prev_[e].blocked;
    h.attempts = cur[e].attempts - prev_[e].attempts;
    h.deliveries = cur[e].deliveries - prev_[e].deliveries;
    leases += h.leases;
    blocked += h.blocked;
    attempts += h.attempts;
    deliveries += h.deliveries;
    util_sum += h.util;
    util_max = std::max(util_max, h.util);
    if (h.util > 0.0 || h.leases > 0 || h.blocked > 0 || h.attempts > 0 ||
        h.deliveries > 0) {
      active.push_back(h);
    }
  }
  std::sort(active.begin(), active.end(),
            [](const HotEdge& a, const HotEdge& b) {
              if (a.util != b.util) return a.util > b.util;
              return a.edge < b.edge;
            });
  if (active.size() > config_.top_k) active.resize(config_.top_k);

  std::string& out = jsonl_;
  out += '{';
  if (!config_.run.empty()) {
    out += "\"run\":\"";
    out += config_.run;
    out += "\",";
  }
  append_field(out, "i", intervals_);
  out += ',';
  append_field(out, "t", static_cast<std::uint64_t>(t));
  out += ',';
  append_field(out, "dt", static_cast<std::uint64_t>(dt));
  out += ',';
  append_field(out, "leases", leases);
  out += ',';
  append_field(out, "blocked", blocked);
  out += ',';
  append_field(out, "attempts", attempts);
  out += ',';
  append_field(out, "deliveries", deliveries);
  out += ',';
  append_field(out, "util_mean",
               cur.empty() ? 0.0
                           : util_sum / static_cast<double>(cur.size()));
  out += ',';
  append_field(out, "util_max", util_max);
  out += ",\"hot\":[";
  for (std::size_t i = 0; i < active.size(); ++i) {
    const HotEdge& h = active[i];
    if (i > 0) out += ',';
    out += '{';
    append_field(out, "edge", static_cast<std::uint64_t>(h.edge));
    if (graph_ != nullptr) {
      const routing::Graph::Edge& ge = graph_->edge(h.edge);
      out += ',';
      append_field(out, "a", static_cast<std::uint64_t>(ge.a));
      out += ',';
      append_field(out, "b", static_cast<std::uint64_t>(ge.b));
    }
    out += ',';
    append_field(out, "util", h.util);
    out += ',';
    append_field(out, "leases", h.leases);
    out += ',';
    append_field(out, "blocked", h.blocked);
    out += ',';
    append_field(out, "attempts", h.attempts);
    out += ',';
    append_field(out, "deliveries", h.deliveries);
    out += '}';
  }
  out += "]}\n";

  max_utilization_ = std::max(max_utilization_, util_max);
  ++intervals_;
  last_t_ = t;
  prev_ = cur;
}

void NetState::finish() {
  if (finished_) return;
  const sim::SimTime now = sim_.now();
  if (now > last_t_) emit(now);
  const std::vector<EdgeSnap> cur = sample(last_t_);
  const double elapsed_s = sim::to_seconds(last_t_ - start_t_);

  std::string& out = jsonl_;
  out += '{';
  if (!config_.run.empty()) {
    out += "\"run\":\"";
    out += config_.run;
    out += "\",";
  }
  out += "\"final\":true,";
  append_field(out, "t", static_cast<std::uint64_t>(last_t_));
  out += ',';
  append_field(out, "intervals", intervals_);

  out += ",\"edges\":[";
  for (std::size_t e = 0; e < cur.size(); ++e) {
    const metrics::EdgeStats::EdgeCounters& c = stats_.edge(e);
    const double busy_s = cur[e].busy_s - start_busy_s_[e];
    // Same ulp-level clamp as the interval path: coverage cannot
    // exceed elapsed sim time, but the double division can.
    const double util =
        elapsed_s > 0.0 ? std::min(1.0, busy_s / elapsed_s) : 0.0;
    max_utilization_ = std::max(max_utilization_, util);
    if (e > 0) out += ',';
    out += '{';
    append_field(out, "edge", static_cast<std::uint64_t>(e));
    if (graph_ != nullptr) {
      const routing::Graph::Edge& ge = graph_->edge(e);
      out += ',';
      append_field(out, "a", static_cast<std::uint64_t>(ge.a));
      out += ',';
      append_field(out, "b", static_cast<std::uint64_t>(ge.b));
    }
    out += ',';
    append_field(out, "util", util);
    out += ',';
    append_field(out, "busy_s", busy_s);
    out += ',';
    append_field(out, "leases", c.leases);
    out += ',';
    append_field(out, "blocked", c.blocked);
    out += ',';
    append_field(out, "attempts", c.attempts);
    out += ',';
    append_field(out, "deliveries", c.deliveries);
    out += ',';
    append_field(out, "admission_waits", c.admission_waits);
    out += ',';
    append_field(out, "admission_wait_s", c.admission_wait_s);
    out += ',';
    append_field(out, "fidelity_mean", c.fidelity.mean());
    out += '}';
  }

  out += "],\"nodes\":[";
  bool first_node = true;
  for (std::size_t n = 0; n < stats_.num_nodes(); ++n) {
    const metrics::EdgeStats::NodeCounters& c = stats_.node(n);
    if (c.swaps == 0 && c.terminals == 0) continue;  // active only
    if (!first_node) out += ',';
    first_node = false;
    out += '{';
    append_field(out, "node", static_cast<std::uint64_t>(n));
    out += ',';
    append_field(out, "swaps", c.swaps);
    out += ',';
    append_field(out, "terminals", c.terminals);
    out += '}';
  }

  const metrics::SpaceSaving& sketch = stats_.hot_edges();
  out += "],\"hot_edges\":[";
  const auto top = sketch.top(config_.top_k);
  for (std::size_t i = 0; i < top.size(); ++i) {
    if (i > 0) out += ',';
    out += '{';
    append_field(out, "edge", top[i].key);
    out += ',';
    append_field(out, "count", top[i].count);
    out += ',';
    append_field(out, "error", top[i].error);
    out += '}';
  }
  out += "],\"sketch\":{";
  append_field(out, "capacity",
               static_cast<std::uint64_t>(sketch.capacity()));
  out += ',';
  append_field(out, "total_weight", sketch.total_weight());
  out += ',';
  append_field(out, "evictions", sketch.evictions());
  out += ",\"exact\":";
  out += sketch.exact() ? "true" : "false";

  out += "},\"totals\":{";
  append_field(out, "leases", stats_.lease_count());
  out += ',';
  append_field(out, "attempt_pairs", stats_.attempt_pairs());
  out += ',';
  append_field(out, "swaps", stats_.swaps());
  out += ',';
  append_field(out, "blocked_requests", stats_.blocked_requests());
  out += ',';
  append_field(out, "deliveries", stats_.deliveries());
  out += ',';
  append_field(out, "admission_waits", stats_.admission_waits());
  out += ',';
  append_field(out, "admission_wait_s", stats_.admission_wait_seconds());
  out += '}';

  if (collector_ != nullptr) {
    out += ",\"collector\":{";
    append_field(out, "pairs_delivered",
                 collector_->total_pairs_delivered());
    out += ',';
    append_field(out, "requests_blocked", collector_->requests_blocked());
    out += ',';
    append_field(out, "admission_waits",
                 collector_->admission_wait().count());
    out += ',';
    append_field(out, "admission_wait_s",
                 collector_->admission_wait().mean() *
                     static_cast<double>(collector_->admission_wait().count()));
    out += '}';
  }

  out += ',';
  append_field(out, "max_utilization", max_utilization_);
  out += "}\n";
  finished_ = true;
}

void NetState::write_jsonl(std::FILE* f) const {
  std::fwrite(jsonl_.data(), 1, jsonl_.size(), f);
}

}  // namespace qlink::obs
