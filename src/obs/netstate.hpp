#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "metrics/edge_stats.hpp"
#include "sim/time.hpp"

/// \file netstate.hpp
/// Network-state sampler (ISSUE 8): deterministic interval time-series
/// of *per-edge* network state over a running simulation — the spatial
/// companion to the obs::Monitor's global counters.
///
/// Each record answers "where is the network busy right now": per-edge
/// lease utilization (fraction of the interval covered by the union of
/// active lease windows, in [0, 1] by construction — see
/// metrics::EdgeStats::busy_seconds), contention deltas (blocked
/// arrivals, lease placements), link-layer CREATE attempt and per-hop
/// delivery deltas, and the interval's hottest edges. The final record
/// carries the full per-edge table, per-node swap/terminal activity,
/// the deterministic Space-Saving hot-edge ranking, and totals that
/// tools/netstate_check.py reconciles against the per-record delta
/// sums and the metrics::Collector's request-level counters.
///
/// Same observation contract as Monitor / Tracer: keyed by *sim* time
/// only, never schedules events, never consumes randomness. It is
/// polled from already-existing control points, so attaching one
/// cannot perturb a seeded trajectory and two same-seed runs write
/// byte-identical JSONL on either qstate backend.
///
/// Sampling semantics follow Monitor: poll() emits one record whenever
/// at least one full interval elapsed since the last record, coalescing
/// sparse polls into a single record whose `dt` is the covered span;
/// finish() flushes the trailing partial interval and appends a
/// `"final": true` summary line.

namespace qlink::metrics {
class Collector;
}

namespace qlink::routing {
class Graph;
}

namespace qlink::sim {
class Simulator;
}

namespace qlink::obs {

struct NetStateConfig {
  /// Record cadence in sim time (> 0).
  sim::SimTime interval = sim::duration::milliseconds(100);
  /// Label stamped into every record as "run" (empty = omitted); lets
  /// several runs share one JSONL file (netstate_check.py validates
  /// each label group independently).
  std::string run;
  /// Hot-edge list length in interval records and in the final
  /// sketch-backed ranking.
  std::size_t top_k = 8;
};

class NetState {
 public:
  NetState(const sim::Simulator& simulator, const metrics::EdgeStats& stats,
           NetStateConfig config = {});

  /// Adds request-level counters to the final record so the validator
  /// can reconcile the per-edge totals against the Collector's.
  void attach_collector(const metrics::Collector* collector) {
    collector_ = collector;
  }
  /// Names edge endpoints (`a`, `b`) in records; omitted when absent.
  void attach_graph(const routing::Graph* graph) { graph_ = graph; }

  /// Emit a record for any interval boundary crossed since the last
  /// one. Cheap when no boundary was crossed; call from existing loops
  /// — never from a scheduled event.
  void poll();

  /// Flush the trailing partial interval and append the final summary
  /// line. Idempotent; poll() after finish() is a no-op.
  void finish();

  std::uint64_t intervals() const noexcept { return intervals_; }
  /// Highest per-edge utilization observed in any emitted record or in
  /// the final full-run table — the bench gate's
  /// `hot_edge_max_utilization` scalar ( <= 1 by construction).
  double max_utilization() const noexcept { return max_utilization_; }

  const std::string& jsonl() const noexcept { return jsonl_; }
  void write_jsonl(std::FILE* f) const;

 private:
  struct EdgeSnap {
    double busy_s = 0.0;
    std::uint64_t leases = 0;
    std::uint64_t blocked = 0;
    std::uint64_t attempts = 0;
    std::uint64_t deliveries = 0;
  };

  std::vector<EdgeSnap> sample(sim::SimTime t) const;
  /// One record covering (last_t_, t]; `t` must be > last_t_.
  void emit(sim::SimTime t);

  const sim::Simulator& sim_;
  const metrics::EdgeStats& stats_;
  const metrics::Collector* collector_ = nullptr;
  const routing::Graph* graph_ = nullptr;
  NetStateConfig config_;

  sim::SimTime start_t_ = 0;
  sim::SimTime last_t_ = 0;
  std::vector<EdgeSnap> prev_;
  /// Per-edge busy seconds at start_t_ (non-zero when the sampler
  /// attached mid-run): full-run utilization is measured from here.
  std::vector<double> start_busy_s_;
  std::uint64_t intervals_ = 0;
  double max_utilization_ = 0.0;
  bool finished_ = false;
  std::string jsonl_;
};

}  // namespace qlink::obs
