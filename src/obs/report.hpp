#pragma once

#include <cstddef>
#include <string>

/// \file report.hpp
/// Markdown run-report renderer (ISSUE 8): one human-readable section
/// per monitored run — summary counters, the hottest edges with their
/// utilization and contention, a stall/contention analysis, and the
/// latency phase decomposition with the slowest requests' phase
/// vectors. The benches render each run's section while its World is
/// alive and concatenate them behind `--report`; tools/report.py is
/// the offline renderer over the JSON artifacts for CI.
///
/// Rendering only reads the same deterministic state the JSONL
/// emitters read, so two same-seed runs produce byte-identical
/// Markdown.

namespace qlink::metrics {
class Collector;
class EdgeStats;
}

namespace qlink::routing {
class Graph;
}

namespace qlink::sim {
class Simulator;
}

namespace qlink::obs {

struct RunReportOptions {
  /// Section heading ("### <title>"); empty = no heading.
  std::string title;
  /// Rows in the hot-edge table.
  std::size_t top_k = 8;
  /// Rows in the slowest-requests table.
  std::size_t slowest = 8;
};

/// Render one run's Markdown section from live observability state.
/// `graph` (optional) names edge endpoints; null leaves ids only.
std::string render_run_report(const sim::Simulator& simulator,
                              const metrics::EdgeStats& stats,
                              const metrics::Collector& collector,
                              const routing::Graph* graph,
                              const RunReportOptions& options = {});

}  // namespace qlink::obs
