#include "obs/snapshot.hpp"

#include <cinttypes>
#include <cstdio>

namespace qlink::obs {

namespace {

void append_num(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_num(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_field(std::string& out, const char* key, double v) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, v);
}

void append_field(std::string& out, const char* key, std::uint64_t v) {
  out += '"';
  out += key;
  out += "\":";
  append_num(out, v);
}

}  // namespace

std::string histogram_json(const metrics::Histogram& h) {
  std::string out = "{";
  append_field(out, "count", h.count());
  out += ',';
  append_field(out, "mean", h.mean());
  out += ',';
  append_field(out, "p50", h.p50());
  out += ',';
  append_field(out, "p90", h.p90());
  out += ',';
  append_field(out, "p99", h.p99());
  out += ',';
  append_field(out, "min", h.min());
  out += ',';
  append_field(out, "max", h.max());
  out += ',';
  append_field(out, "underflow", h.underflow());
  out += ',';
  append_field(out, "overflow", h.overflow());
  out += '}';
  return out;
}

std::string Snapshot::json() const {
  std::string out = "{";
  bool first = true;
  const auto section = [&out, &first](const char* key) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += key;
    out += "\":";
  };

  if (router != nullptr) {
    section("router");
    out += '{';
    append_field(out, "submitted", router->submitted);
    out += ',';
    append_field(out, "admitted", router->admitted);
    out += ',';
    append_field(out, "blocked", router->blocked);
    out += ',';
    append_field(out, "deferred", router->deferred);
    out += ',';
    append_field(out, "rejected", router->rejected);
    out += ',';
    append_field(out, "completed", router->completed);
    out += ',';
    append_field(out, "failed", router->failed);
    out += ',';
    append_field(out, "rerouted", router->rerouted);
    out += ',';
    append_field(out, "abandoned", router->abandoned);
    out += ',';
    append_field(out, "pairs_delivered", router->pairs_delivered);
    out += '}';
  }

  if (swap != nullptr) {
    section("swap");
    out += '{';
    append_field(out, "requests", swap->requests);
    out += ',';
    append_field(out, "resubmissions", swap->resubmissions);
    out += ',';
    append_field(out, "link_pairs_consumed", swap->link_pairs_consumed);
    out += ',';
    append_field(out, "swaps", swap->swaps);
    out += ',';
    append_field(out, "pairs_delivered", swap->pairs_delivered);
    out += ',';
    append_field(out, "errors", swap->errors);
    out += ',';
    append_field(out, "unclaimed_oks", swap->unclaimed_oks);
    out += '}';
  }

  if (backend != nullptr) {
    section("backend");
    out += '{';
    append_field(out, "fast_ops", backend->fast_ops);
    out += ',';
    append_field(out, "dense_ops", backend->dense_ops);
    out += ',';
    append_field(out, "promotions", backend->promotions);
    out += ',';
    append_field(out, "demotions", backend->demotions);
    out += ',';
    append_field(out, "pool_hits", backend->pool_hits);
    out += ',';
    append_field(out, "pool_misses", backend->pool_misses);
    out += '}';
  }

  if (collector != nullptr) {
    section("distributions");
    out += "{\"request_latency_s\":";
    out += histogram_json(collector->request_latency_hist());
    out += ",\"pair_latency_s\":";
    out += histogram_json(collector->pair_latency_hist());
    out += ",\"admission_wait_s\":";
    out += histogram_json(collector->admission_wait_hist());
    out += ",\"fidelity\":";
    out += histogram_json(collector->fidelity_hist());
    out += '}';

    // Latency phase decomposition (ISSUE 8): per-phase distributions
    // over the same request stream, plus the slowest requests' phase
    // vectors (deterministic order: total desc, origin/id asc).
    section("phases");
    out += '{';
    for (std::size_t p = 0; p < metrics::kNumPhases; ++p) {
      if (p > 0) out += ',';
      out += '"';
      out += metrics::phase_name(static_cast<metrics::Phase>(p));
      out += "\":";
      out += histogram_json(
          collector->phase_hist(static_cast<metrics::Phase>(p)));
    }
    out += ",\"slowest\":[";
    bool first_slow = true;
    for (const metrics::Collector::SlowRequest& s :
         collector->slowest_requests()) {
      if (!first_slow) out += ',';
      first_slow = false;
      out += '{';
      append_field(out, "origin", static_cast<std::uint64_t>(s.origin));
      out += ',';
      append_field(out, "id", static_cast<std::uint64_t>(s.id));
      out += ',';
      append_field(out, "total_s", s.total_s);
      for (std::size_t p = 0; p < metrics::kNumPhases; ++p) {
        out += ',';
        append_field(out, metrics::phase_name(static_cast<metrics::Phase>(p)),
                     s.phase_s[p]);
      }
      out += '}';
    }
    out += "]}";
  }

  if (simulator != nullptr) {
    section("engine");
    out += '{';
    append_field(out, "events_processed", simulator->events_processed());
    out += ',';
    append_field(out, "heap_high_water",
                 static_cast<std::uint64_t>(simulator->heap_high_water()));
    out += ",\"labels\":[";
    bool first_label = true;
    for (const auto& stat : simulator->label_stats()) {
      if (!first_label) out += ',';
      first_label = false;
      out += "{\"label\":\"";
      out += stat.label;  // labels are static literals: no escaping needed
      out += "\",";
      append_field(out, "count", stat.count);
      if (simulator->profiler()) {
        out += ',';
        append_field(out, "wall_seconds", stat.wall_seconds);
      }
      out += '}';
    }
    out += "]}";
  }

  out += '}';
  return out;
}

}  // namespace qlink::obs
