#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "metrics/collector.hpp"
#include "metrics/histogram.hpp"
#include "sim/time.hpp"

/// \file monitor.hpp
/// Live run monitor (ISSUE 7): deterministic interval time-series
/// telemetry over a running simulation, plus a stall watchdog.
///
/// A minutes-long run is a black box until its end-of-run Snapshot; the
/// Monitor streams one JSONL record per fixed sim-time interval instead
/// — counter *deltas* (deliveries, engine events, router outcomes),
/// rate gauges (deliveries/s, events/s, admission backlog, heap depth),
/// per-interval histogram deltas (count + p99 via
/// Histogram::delta_since), and an ETA/progress estimate against a
/// configured request target.
///
/// Same observation contract as the Tracer (ISSUE 6): the monitor is
/// keyed by *simulation* time only, never schedules events, and never
/// consumes randomness — it is polled from already-existing control
/// points (the bench run loops, WorkloadDriver::on_cycle), so attaching
/// one cannot perturb a seeded trajectory, and two same-seed runs write
/// byte-identical JSONL.
///
/// Sampling semantics: poll() emits a record whenever at least one full
/// interval has elapsed since the last record. Sparse polling coalesces
/// the elapsed intervals into a single record whose `dt` is the covered
/// span (a multiple of the interval); values are sampled at the poll
/// that crosses the boundary and stamped at the boundary time `t`.
/// finish() flushes the trailing partial interval (its `dt` may be
/// shorter) and appends a `"final": true` summary line whose totals
/// equal the per-record delta sums — the invariant
/// tools/monitor_check.py enforces.
///
/// Stall watchdog: a record whose span covers at least one full
/// interval, delivered zero pairs, and sampled a positive admission
/// backlog is *starved*; once MonitorConfig::stall_consecutive starved
/// intervals accumulate back-to-back (a coalesced record counts each
/// full interval it covers), records are flagged `"stalled": true`,
/// counted in stalled_intervals(), and mirrored as `warn` instants on
/// the Tracer's global lane (when one is attached). Any interval with
/// a delivery or an empty backlog resets the run. Each record also
/// carries the Collector's open request count and the oldest open
/// request's age, so leaked `Collector::open_` entries surface instead
/// of growing silently.

namespace qlink::routing {
class Router;
}  // namespace qlink::routing

namespace qlink::sim {
class Simulator;
}  // namespace qlink::sim

namespace qlink::obs {

class Tracer;

struct MonitorConfig {
  /// Record cadence in sim time (> 0).
  sim::SimTime interval = sim::duration::milliseconds(100);
  /// Label stamped into every record as "run" (empty = omitted); lets
  /// several monitored runs share one JSONL file (monitor_check.py
  /// validates each label group independently).
  std::string run;
  /// Expected request completions; > 0 enables the progress / eta_s
  /// fields (completions from the Router when attached, else from the
  /// Collector's per-kind counts).
  std::uint64_t target_requests = 0;
  /// Stall warnings land here as `warn` instants on the global lane
  /// (trace 0); null = no trace mirroring.
  Tracer* tracer = nullptr;
  /// Consecutive starved intervals (zero deliveries, backlog > 0)
  /// before the watchdog flags — the health-check debounce. 1 flags
  /// immediately (deterministic corridor runs, unit tests); contended
  /// random-traffic runs set it higher so one statistically quiet
  /// interval is not a stall.
  std::uint64_t stall_consecutive = 1;
};

class Monitor {
 public:
  Monitor(const sim::Simulator& simulator,
          const metrics::Collector& collector, MonitorConfig config = {});

  /// Admission backlog + submitted/completed/failed come from here;
  /// without a router those record fields are omitted and the watchdog
  /// never fires (backlog is unknowable).
  void attach_router(const routing::Router* router) { router_ = router; }

  /// Emit a record for any interval boundary crossed since the last
  /// one. Cheap when no boundary was crossed (one time comparison);
  /// call from existing loops — never from a scheduled event.
  void poll();

  /// Flush the trailing partial interval and append the final summary
  /// line. Idempotent; poll() after finish() is a no-op.
  void finish();

  std::uint64_t intervals() const noexcept { return intervals_; }
  std::uint64_t stalled_intervals() const noexcept {
    return stalled_intervals_;
  }
  /// Highest admission backlog sampled at any record emission.
  std::uint64_t peak_backlog() const noexcept { return peak_backlog_; }
  /// Sum of the emitted per-record delivery deltas.
  std::uint64_t total_deliveries() const noexcept {
    return total_deliveries_;
  }

  const std::string& jsonl() const noexcept { return jsonl_; }
  void write_jsonl(std::FILE* f) const;

 private:
  struct Cumulative {
    std::uint64_t deliveries = 0;
    std::uint64_t events = 0;
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    metrics::Histogram request_latency;
    metrics::Histogram pair_latency;
    metrics::Histogram admission_wait;
  };

  Cumulative sample() const;
  std::uint64_t completed_total() const;
  std::size_t backlog() const;
  /// One record covering (last_t_, t]; `t` must be > last_t_.
  void emit(sim::SimTime t);

  const sim::Simulator& sim_;
  const metrics::Collector& collector_;
  const routing::Router* router_ = nullptr;
  MonitorConfig config_;

  sim::SimTime start_t_ = 0;
  sim::SimTime last_t_ = 0;
  Cumulative prev_;
  std::uint64_t intervals_ = 0;
  std::uint64_t stall_run_ = 0;  // consecutive starved intervals
  std::uint64_t stalled_intervals_ = 0;
  std::uint64_t peak_backlog_ = 0;
  std::uint64_t total_deliveries_ = 0;
  std::uint64_t total_events_ = 0;
  bool finished_ = false;
  std::string jsonl_;
};

}  // namespace qlink::obs
