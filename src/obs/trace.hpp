#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "sim/time.hpp"

/// \file trace.hpp
/// Deterministic request-lifecycle tracing (ISSUE 6).
///
/// A Tracer records spans and instant events keyed by *simulation* time
/// only — never wall clock — so two same-seed runs produce byte-identical
/// traces. Layers hold a `Tracer*` that is null by default; every
/// recording site is guarded by that one pointer check, which keeps the
/// disabled cost near zero and (since the tracer never schedules events
/// or consumes randomness) enabling it cannot perturb a trajectory.
///
/// Event model (a subset of the Chrome trace-event format, loadable in
/// Perfetto via chrome://tracing JSON):
///   - complete spans ("X"): a named duration on a request's lane
///     (pid 1, tid = trace_id). Spans on one lane must nest properly —
///     the Router only emits request-lifecycle spans there (the request
///     envelope, its admission wait, its deferral window), which nest
///     by construction.
///   - async spans ("b"/"n"/"e"): per-hop CREATE -> OK progress. Hops
///     of one request overlap freely in time, so they get async
///     semantics (matched by category + id, no nesting constraint);
///     each hop's matched link pairs are async instants ("n") on its
///     span.
///   - instants ("i"): submit / reroute / abandon / deliver /
///     EGP-error marks. Unattributable events land on tid 0.
///
/// Two export surfaces over the same recorded stream: Chrome trace
/// JSON (`{"traceEvents": [...]}`, ts/dur in microseconds with
/// nanosecond decimals) and a compact JSONL stream (one event per line,
/// times in integer nanoseconds) for diffing and byte-identity tests.
///
/// trace_id allocation is a plain counter on the tracer, stamped into
/// E2eRequest::trace_id at first submission and carried through
/// re-routing resubmissions, so a rerouted request stays one trace.

namespace qlink::obs {

using TraceId = std::uint64_t;

class Tracer {
 public:
  /// One pre-rendered argument: `value` must already be valid JSON
  /// (a number, or a quoted+escaped string — see str_arg/num_arg).
  struct Arg {
    std::string key;
    std::string value;
  };
  static Arg str_arg(std::string key, const std::string& value);
  static Arg num_arg(std::string key, double value);
  static Arg num_arg(std::string key, std::uint64_t value);

  /// Monotonic per-tracer trace-id source (ids start at 1; 0 means
  /// "no trace assigned" everywhere trace ids travel).
  TraceId new_trace() { return next_trace_id_++; }

  /// A finished span [start, end] on `trace`'s lane.
  void complete(TraceId trace, const char* cat, const char* name,
                sim::SimTime start, sim::SimTime end,
                std::vector<Arg> args = {});

  /// An instant mark on `trace`'s lane (trace 0 = the global lane).
  void instant(TraceId trace, const char* cat, const char* name,
               sim::SimTime at, std::vector<Arg> args = {});

  /// Async span begin; the returned id ties instants and the end to it.
  std::uint64_t async_begin(TraceId trace, const char* cat,
                            const char* name, sim::SimTime at,
                            std::vector<Arg> args = {});
  void async_instant(std::uint64_t id, TraceId trace, const char* cat,
                     const char* name, sim::SimTime at,
                     std::vector<Arg> args = {});
  void async_end(std::uint64_t id, TraceId trace, const char* cat,
                 const char* name, sim::SimTime at);

  std::size_t num_events() const noexcept { return events_.size(); }

  /// Chrome trace-event JSON object ({"traceEvents": [...]}).
  std::string chrome_json() const;
  /// Compact JSONL: one event per line, integer-nanosecond times.
  std::string jsonl() const;
  void write_chrome_json(std::FILE* f) const;
  void write_jsonl(std::FILE* f) const;

 private:
  enum class Phase : std::uint8_t {
    kComplete,      // "X"
    kInstant,       // "i"
    kAsyncBegin,    // "b"
    kAsyncInstant,  // "n"
    kAsyncEnd,      // "e"
  };

  struct Event {
    Phase phase;
    TraceId trace = 0;
    std::uint64_t async_id = 0;
    const char* cat = "";
    const char* name = "";
    sim::SimTime ts = 0;
    sim::SimTime dur = 0;  // kComplete only
    std::vector<Arg> args;
  };

  static char phase_char(Phase p);
  static void append_event(std::string& out, const Event& e, bool chrome);

  std::vector<Event> events_;
  TraceId next_trace_id_ = 1;
  std::uint64_t next_async_id_ = 1;
};

}  // namespace qlink::obs
