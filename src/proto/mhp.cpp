#include "proto/mhp.hpp"

#include <utility>

namespace qlink::proto {

using net::AbsoluteQueueId;
using net::GenPacket;
using net::MhpError;
using net::PacketType;
using net::ReplyPacket;

// ---------------------------------------------------------------------------
// NodeMhp

NodeMhp::NodeMhp(sim::Simulator& simulator, std::string name,
                 std::uint32_t node_id, hw::NvDevice& device,
                 net::ClassicalChannel& station_link, int link_endpoint,
                 sim::SimTime cycle_period)
    : Entity(simulator, std::move(name)),
      node_id_(node_id),
      device_(device),
      link_(station_link),
      endpoint_(link_endpoint),
      cycle_period_(cycle_period),
      timer_(simulator, cycle_period, [this] { on_cycle(); }, "mhp.cycle") {
  link_.set_receiver(endpoint_,
                     [this](std::vector<std::uint8_t> b) { on_frame(std::move(b)); });
}

void NodeMhp::start() { timer_.start(); }
void NodeMhp::stop() { timer_.stop(); }

std::uint64_t NodeMhp::current_cycle() const {
  return static_cast<std::uint64_t>(now() / cycle_period_);
}

void NodeMhp::on_cycle() {
  if (!poll_) return;
  // Tight real-time constraint: if the device is mid-operation (e.g.
  // moving a state to memory or re-initialising a carbon) no attempt can
  // be triggered this cycle.
  if (device_.busy()) return;

  const PollResponse response = poll_();
  if (!response.attempt) return;

  // Trigger: initialise the communication qubit and emit. The spin-photon
  // physics is evaluated at the station (see HeraldModel); locally we
  // reset the electron, account the init+emission time and apply the
  // per-attempt dephasing to stored memory qubits.
  device_.initialize_electron();
  device_.apply_attempt_dephasing(response.alpha);
  ++attempts_;

  GenPacket gen;
  gen.node_id = node_id_;
  gen.cycle = current_cycle();
  gen.aid = response.aid;
  gen.pair_index = response.pair_index;
  gen.request_type = response.measure_directly ? 1 : 0;
  gen.m_basis = static_cast<std::uint8_t>(response.basis);
  gen.alpha = response.alpha;
  link_.send_from(endpoint_, net::seal(PacketType::kMhpGen, gen.encode()));
}

void NodeMhp::on_frame(std::vector<std::uint8_t> bytes) {
  const auto frame = net::unseal(bytes);
  if (!frame || frame->type != PacketType::kMhpReply) return;  // corrupt
  ReplyPacket reply;
  try {
    reply = ReplyPacket::decode(frame->payload);
  } catch (const net::WireError&) {
    return;
  }
  ++replies_;
  if (result_) result_(MhpResult{reply, false});
}

// ---------------------------------------------------------------------------
// MidpointStation

MidpointStation::MidpointStation(sim::Simulator& simulator, std::string name,
                                 const hw::HeraldModel& model,
                                 sim::Random& random,
                                 net::ClassicalChannel& link_a, int endpoint_a,
                                 net::ClassicalChannel& link_b, int endpoint_b,
                                 sim::SimTime cycle_period)
    : Entity(simulator, std::move(name)),
      model_(model),
      random_(random),
      link_a_(link_a),
      link_b_(link_b),
      endpoint_a_(endpoint_a),
      endpoint_b_(endpoint_b),
      cycle_period_(cycle_period) {
  link_a_.set_receiver(endpoint_a_, [this](std::vector<std::uint8_t> b) {
    on_frame(true, std::move(b));
  });
  link_b_.set_receiver(endpoint_b_, [this](std::vector<std::uint8_t> b) {
    on_frame(false, std::move(b));
  });
}

double MidpointStation::mean_heralded_fidelity() const {
  return fidelity_count_ == 0 ? 0.0
                              : fidelity_sum_ / static_cast<double>(
                                                    fidelity_count_);
}

void MidpointStation::send_reply(bool to_a, const ReplyPacket& reply) {
  auto& link = to_a ? link_a_ : link_b_;
  const int ep = to_a ? endpoint_a_ : endpoint_b_;
  link.send_from(ep, net::seal(PacketType::kMhpReply, reply.encode()));
}

void MidpointStation::reply_error(const PendingGen& pending, MhpError err,
                                  const GenPacket* other) {
  ReplyPacket reply;
  reply.outcome = 0;
  reply.error = err;
  reply.seq_mhp = seq_mhp_;
  reply.aid_receiver = pending.gen.aid;
  reply.aid_peer = other ? other->aid : AbsoluteQueueId{};
  reply.pair_index = pending.gen.pair_index;
  reply.cycle = pending.gen.cycle;
  send_reply(pending.from_a, reply);
  if (other) {
    ReplyPacket mirrored = reply;
    mirrored.aid_receiver = other->aid;
    mirrored.aid_peer = pending.gen.aid;
    mirrored.pair_index = other->pair_index;
    send_reply(!pending.from_a, mirrored);
  }
}

void MidpointStation::expire_pending(std::uint64_t cycle) {
  auto it = pending_.find(cycle);
  if (it == pending_.end()) return;
  PendingGen pending = std::move(it->second);
  pending_.erase(it);
  ++mismatches_;
  reply_error(pending, MhpError::kNoMessageOther, nullptr);
}

void MidpointStation::on_frame(bool from_a, std::vector<std::uint8_t> bytes) {
  const auto frame = net::unseal(bytes);
  if (!frame || frame->type != PacketType::kMhpGen) return;
  GenPacket gen;
  try {
    gen = GenPacket::decode(frame->payload);
  } catch (const net::WireError&) {
    return;
  }
  ++gens_;

  auto it = pending_.find(gen.cycle);
  if (it == pending_.end()) {
    PendingGen pending;
    pending.gen = gen;
    pending.from_a = from_a;
    // If the partner GEN never shows up, report NO_MESSAGE_OTHER.
    pending.timeout_event = schedule_in(
        static_cast<sim::SimTime>(match_window_) * cycle_period_,
        [this, cycle = gen.cycle] { expire_pending(cycle); },
        "mhp.timeout");
    pending_.emplace(gen.cycle, std::move(pending));
    return;
  }

  PendingGen first = std::move(it->second);
  pending_.erase(it);
  simulator().cancel(first.timeout_event);

  if (first.from_a == from_a) {
    // Duplicate from the same side (should not happen): treat the newer
    // frame as one-sided.
    ++mismatches_;
    reply_error(first, MhpError::kTimeMismatch, &gen);
    return;
  }

  const GenPacket& a = first.from_a ? first.gen : gen;
  const GenPacket& b = first.from_a ? gen : first.gen;
  process_pair(a, b);
}

void MidpointStation::process_pair(const GenPacket& a, const GenPacket& b) {
  // The midpoint verifies that the attempt IDs agree (Protocol 1 2(a)ii).
  // Pair indices may legitimately differ by a lost REPLY; both are
  // echoed in the REPLY so the nodes can resynchronise (Section 5.2.5).
  if (a.aid != b.aid || a.request_type != b.request_type) {
    ++mismatches_;
    ReplyPacket to_a;
    to_a.outcome = 0;
    to_a.error = MhpError::kQueueMismatch;
    to_a.seq_mhp = seq_mhp_;
    to_a.aid_receiver = a.aid;
    to_a.aid_peer = b.aid;
    to_a.pair_index = a.pair_index;
    to_a.cycle = a.cycle;
    send_reply(true, to_a);
    ReplyPacket to_b = to_a;
    to_b.aid_receiver = b.aid;
    to_b.aid_peer = a.aid;
    to_b.pair_index = b.pair_index;
    send_reply(false, to_b);
    return;
  }

  // Sample the heralding outcome from the physical model.
  const hw::HeraldDistribution& dist =
      model_.distribution(a.alpha, b.alpha);
  const double weights[] = {dist.p_fail, dist.p_psi_plus, dist.p_psi_minus};
  const int outcome = static_cast<int>(random_.discrete(weights));

  ReplyPacket to_a;
  to_a.outcome = static_cast<std::uint8_t>(outcome);
  to_a.error = MhpError::kNone;
  to_a.aid_receiver = a.aid;
  to_a.aid_peer = b.aid;
  to_a.pair_index = a.pair_index;
  to_a.pair_index_peer = b.pair_index;
  to_a.cycle = a.cycle;

  if (outcome != 0) {
    to_a.seq_mhp = ++seq_mhp_;
    fidelity_sum_ +=
        outcome == 1 ? dist.fidelity_plus : dist.fidelity_minus;
    ++fidelity_count_;

    if (a.request_type == 1) {
      // M-type: sample the joint measurement outcomes here (simulator
      // privilege; see ReplyPacket docs).
      const auto basis_a = static_cast<quantum::gates::Basis>(a.m_basis);
      const auto basis_b = static_cast<quantum::gates::Basis>(b.m_basis);
      if (sample_) {
        const auto [oa, ob] = sample_(outcome, basis_a, basis_b, a.alpha,
                                      b.alpha);
        to_a.m_basis = a.m_basis;
        to_a.m_outcome = static_cast<std::uint8_t>(oa);
        to_a.m_outcome_peer = static_cast<std::uint8_t>(ob);
      }
    } else if (install_) {
      // K-type: the entanglement swap succeeded; install the heralded
      // state into the two communication qubits.
      install_(outcome, a.cycle, a.alpha, b.alpha);
    }
  } else {
    to_a.seq_mhp = seq_mhp_;
  }

  ReplyPacket to_b = to_a;
  to_b.aid_receiver = b.aid;
  to_b.aid_peer = a.aid;
  to_b.pair_index = b.pair_index;
  to_b.pair_index_peer = a.pair_index;
  if (a.request_type == 1 && outcome != 0) {
    to_b.m_basis = b.m_basis;
    std::swap(to_b.m_outcome, to_b.m_outcome_peer);
  }
  send_reply(true, to_a);
  send_reply(false, to_b);
}

}  // namespace qlink::proto
