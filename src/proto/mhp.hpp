#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "hw/herald_model.hpp"
#include "hw/nv_device.hpp"
#include "net/channel.hpp"
#include "net/packets.hpp"
#include "quantum/gates.hpp"
#include "sim/entity.hpp"

/// \file mhp.hpp
/// Physical-layer Midpoint Heralding Protocol (Protocol 1, Section 5.1).
///
/// `NodeMhp` runs at each controllable node: every MHP cycle it polls the
/// link layer (the EGP) for work, triggers an entanglement attempt when
/// told to, sends a GEN frame to the station and forwards REPLY frames
/// back up. It keeps no request state, exactly as the paper demands of
/// the physical layer.
///
/// `MidpointStation` is the automated node H: it pairs GEN frames by
/// cycle, verifies the attempt IDs match, samples the heralding outcome
/// from the physical model, installs fresh entanglement into the two
/// communication qubits (or samples M-type outcomes), and answers both
/// nodes with REPLY/ERR frames carrying a monotonically increasing
/// midpoint sequence number.

namespace qlink::proto {

/// What the EGP answers when the MHP polls it ("yes/no + info", Fig. 4).
struct PollResponse {
  bool attempt = false;
  net::AbsoluteQueueId aid;
  std::uint16_t pair_index = 0;
  bool measure_directly = false;          // M vs K
  quantum::gates::Basis basis = quantum::gates::Basis::kZ;  // M only
  double alpha = 0.1;
};

/// RESULT passed from the MHP to the EGP (Protocol 1, step 3).
struct MhpResult {
  net::ReplyPacket reply;
  bool local_failure = false;  // GEN_FAIL: never reached the station
};

class NodeMhp : public sim::Entity {
 public:
  using PollFn = std::function<PollResponse()>;
  using ResultFn = std::function<void(const MhpResult&)>;

  NodeMhp(sim::Simulator& simulator, std::string name, std::uint32_t node_id,
          hw::NvDevice& device, net::ClassicalChannel& station_link,
          int link_endpoint, sim::SimTime cycle_period);

  /// Wire the link layer in; must be done before start().
  void set_poll_handler(PollFn fn) { poll_ = std::move(fn); }
  void set_result_handler(ResultFn fn) { result_ = std::move(fn); }

  /// Begin the periodic cycle clock (first tick at t=0 offset).
  void start();
  void stop();

  std::uint64_t current_cycle() const;
  sim::SimTime cycle_period() const noexcept { return cycle_period_; }
  std::uint32_t node_id() const noexcept { return node_id_; }

  std::uint64_t attempts_made() const noexcept { return attempts_; }
  std::uint64_t replies_seen() const noexcept { return replies_; }

 private:
  void on_cycle();
  void on_frame(std::vector<std::uint8_t> bytes);

  std::uint32_t node_id_;
  hw::NvDevice& device_;
  net::ClassicalChannel& link_;
  int endpoint_;
  sim::SimTime cycle_period_;
  PollFn poll_;
  ResultFn result_;
  sim::PeriodicTimer timer_;
  std::uint64_t attempts_ = 0;
  std::uint64_t replies_ = 0;
};

/// Callback used by the station to install heralded entanglement into
/// the communication qubits of both nodes. Provided by the network
/// assembly, which knows the devices; `outcome` is 1 (Psi+) or 2 (Psi-).
using InstallFn = std::function<void(int outcome, std::uint64_t cycle,
                                     double alpha_a, double alpha_b)>;

/// Callback sampling M-type joint outcomes from the heralded state:
/// given the bases at A and B, returns the pair of outcomes.
using SampleMeasureFn = std::function<std::pair<int, int>(
    int outcome, quantum::gates::Basis basis_a, quantum::gates::Basis basis_b,
    double alpha_a, double alpha_b)>;

class MidpointStation : public sim::Entity {
 public:
  MidpointStation(sim::Simulator& simulator, std::string name,
                  const hw::HeraldModel& model, sim::Random& random,
                  net::ClassicalChannel& link_a, int endpoint_a,
                  net::ClassicalChannel& link_b, int endpoint_b,
                  sim::SimTime cycle_period);

  void set_install_handler(InstallFn fn) { install_ = std::move(fn); }
  void set_measure_sampler(SampleMeasureFn fn) { sample_ = std::move(fn); }

  /// How many cycles the station waits for the partner GEN before
  /// declaring NO_MESSAGE_OTHER (covers the A/B path-delay difference).
  void set_match_window(std::uint64_t cycles) { match_window_ = cycles; }

  std::uint32_t successes() const noexcept { return seq_mhp_; }
  std::uint64_t gen_frames() const noexcept { return gens_; }
  std::uint64_t mismatches() const noexcept { return mismatches_; }

  /// True fidelity bookkeeping for metrics: average heralded fidelity of
  /// successes as computed by the physical model (simulator privilege).
  double mean_heralded_fidelity() const;

 private:
  struct PendingGen {
    net::GenPacket gen;
    bool from_a = false;
    sim::EventId timeout_event = 0;
  };

  void on_frame(bool from_a, std::vector<std::uint8_t> bytes);
  void process_pair(const net::GenPacket& a, const net::GenPacket& b);
  void reply_error(const PendingGen& pending, net::MhpError err,
                   const net::GenPacket* other);
  void send_reply(bool to_a, const net::ReplyPacket& reply);
  void expire_pending(std::uint64_t cycle);

  const hw::HeraldModel& model_;
  sim::Random& random_;
  net::ClassicalChannel& link_a_;
  net::ClassicalChannel& link_b_;
  int endpoint_a_;
  int endpoint_b_;
  sim::SimTime cycle_period_;
  std::uint64_t match_window_ = 32;
  InstallFn install_;
  SampleMeasureFn sample_;

  std::map<std::uint64_t, PendingGen> pending_;  // keyed by cycle
  std::uint32_t seq_mhp_ = 0;
  std::uint64_t gens_ = 0;
  std::uint64_t mismatches_ = 0;
  double fidelity_sum_ = 0.0;
  std::uint64_t fidelity_count_ = 0;
};

}  // namespace qlink::proto
