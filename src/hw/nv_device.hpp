#pragma once

#include <optional>
#include <vector>

#include "hw/nv_params.hpp"
#include "quantum/gates.hpp"
#include "quantum/registry.hpp"
#include "sim/entity.hpp"

/// \file nv_device.hpp
/// QuantumProcessingDevice for the NV platform (Appendix C/D).
///
/// One communication qubit (the electron spin) plus a configurable number
/// of memory qubits (carbon-13 nuclear spins). Decoherence is applied
/// lazily: each qubit remembers when its state was last brought up to
/// date and the appropriate T1/T2 channel is applied on access. The
/// eager exceptions are the per-attempt carbon dephasing (Eq. 24-25) and
/// gate noise, which are pushed when the corresponding event happens.

namespace qlink::hw {

class NvDevice : public sim::Entity {
 public:
  NvDevice(sim::Simulator& simulator, std::string name, const NvParams& params,
           quantum::QuantumRegistry& registry);

  ~NvDevice() override;

  const NvParams& params() const noexcept { return params_; }
  quantum::QuantumRegistry& registry() noexcept { return registry_; }

  quantum::QubitId comm_qubit() const noexcept { return comm_; }
  int num_memory_qubits() const noexcept {
    return static_cast<int>(memory_.size());
  }
  quantum::QubitId memory_qubit(int i) const { return memory_.at(i); }

  /// True if the device is executing a (blocking) operation.
  bool busy() const noexcept { return busy_until_ > now(); }
  sim::SimTime busy_until() const noexcept { return busy_until_; }

  /// Initialise the electron spin to |0> with the Table-6 depolarising
  /// init noise. Marks the device busy for the init duration.
  void initialize_electron();

  /// Initialise a carbon spin (blocking, 310 us, 0.95 fidelity).
  void initialize_carbon(int i);

  /// Swap the communication qubit's state into memory qubit i (1040 us,
  /// two E-C controlled-sqrt(X) gates; gate noise applied). The electron
  /// ends in the carbon's previous (freshly initialised) state.
  void move_comm_to_memory(int i);

  /// Rotate + read out the electron with the asymmetric readout noise of
  /// Eq. 23. The qubit collapses; callers usually re-initialise next.
  int measure_comm(quantum::gates::Basis basis);

  /// Read out memory qubit i via the electron (Appendix D.3.4):
  /// init electron, effective CNOT, read electron.
  int measure_memory(int i, quantum::gates::Basis basis);

  /// Noiseless-by-Table-6 single-qubit electron gate (5 ns, F = 1.0).
  void apply_electron_gate(const quantum::Matrix& u);

  /// Apply the per-attempt dephasing of Eq. 24-25 to every carbon that
  /// currently stores live entanglement.
  void apply_attempt_dephasing(double alpha);

  /// Bring a qubit's decoherence up to date (called automatically by all
  /// operations; exposed so metrics can snapshot a fresh state).
  void touch(quantum::QubitId q);
  void touch_all();

  /// Mark a qubit's state as freshly written at the current time without
  /// applying decay (used when entanglement is installed externally).
  void mark_fresh(quantum::QubitId q);

  /// Mark a qubit as holding protocol-relevant state ("live"): live
  /// carbons receive attempt dephasing; idle ones are skipped.
  void set_live(quantum::QubitId q, bool live);
  bool is_live(quantum::QubitId q) const;

  /// Occupy the device for an externally-timed operation.
  void occupy_for(sim::SimTime duration);

 private:
  struct QubitMeta {
    quantum::QubitId id = 0;
    bool is_electron = false;
    sim::SimTime last_update = 0;
    bool live = false;
  };

  QubitMeta& meta(quantum::QubitId q);
  const QubitMeta& meta(quantum::QubitId q) const;
  void apply_decay(QubitMeta& m);
  int noisy_readout(int true_outcome);

  NvParams params_;
  quantum::QuantumRegistry& registry_;
  quantum::QubitId comm_ = 0;
  std::vector<quantum::QubitId> memory_;
  std::vector<QubitMeta> meta_;
  sim::SimTime busy_until_ = 0;
};

}  // namespace qlink::hw
