#include "hw/nv_params.hpp"

namespace qlink::hw {

namespace {
/// Speed of light in fiber, km/s (Appendix A.4).
constexpr double kFiberLightSpeedKmPerS = 206753.0;

sim::SimTime fiber_delay(double km) {
  return sim::duration::seconds(km / kFiberLightSpeedKmPerS);
}
}  // namespace

ScenarioParams ScenarioParams::lab() {
  ScenarioParams p;
  p.name = "Lab";
  // Defaults in NvParams / HeraldParams already describe Lab.
  p.herald.fiber_length_a_km = 0.001;
  p.herald.fiber_length_b_km = 0.001;
  p.delay_a_to_station = fiber_delay(0.001);
  p.delay_b_to_station = fiber_delay(0.001);
  return p;
}

ScenarioParams ScenarioParams::ql2020() {
  ScenarioParams p;
  p.name = "QL2020";
  // Optical cavities enhance emission (D.4.4-D.4.5, [84][85][88]).
  p.herald.p_zero_phonon = 0.46;
  p.herald.emission_tau_ns = 6.48;
  // Frequency conversion 637 nm -> 1588 nm succeeds w.p. 30% [105].
  p.herald.p_collection = 0.019 * 0.3;
  // Telecom fiber at 1588 nm: 0.5 dB/km.
  p.herald.fiber_loss_db_per_km = 0.5;
  p.herald.fiber_length_a_km = 10.0;
  p.herald.fiber_length_b_km = 15.0;
  // Paper: 48.4 us (A, 10 km) and 72.6 us (B, 15 km).
  p.delay_a_to_station = fiber_delay(10.0);
  p.delay_b_to_station = fiber_delay(15.0);
  return p;
}

}  // namespace qlink::hw
