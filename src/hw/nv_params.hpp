#pragma once

#include <cmath>
#include <string>

#include "sim/time.hpp"

/// \file nv_params.hpp
/// Physical parameters of the NV platform and of the two evaluation
/// scenarios of the paper: "Lab" (2 m, realised hardware, Section 4.4)
/// and "QL2020" (~25 km between two European cities). Values follow
/// Table 6 and Appendix D.4-D.6.

namespace qlink::hw {

/// A gate's (un-squared) fidelity and duration, Table 6.
struct GateSpec {
  double fidelity = 1.0;
  sim::SimTime duration = 0;
};

/// Per-device (node) parameters.
struct NvParams {
  // Decoherence times in ns; <= 0 means infinite.
  double electron_t1_ns = 2.86e6;   // 2.86 ms
  double electron_t2_ns = 1.00e6;   // T2* = 1.00 ms
  double carbon_t1_ns = -1.0;       // infinite
  double carbon_t2_ns = 3.5e6;      // 3.5 ms

  GateSpec electron_single{1.0, sim::duration::nanoseconds(5)};
  GateSpec ec_controlled_sqrt_x{0.992, sim::duration::microseconds(500)};
  GateSpec carbon_rot_z{0.999, sim::duration::microseconds(20)};
  GateSpec electron_init{0.95, sim::duration::microseconds(2)};
  GateSpec carbon_init{0.95, sim::duration::microseconds(310)};

  // Asymmetric readout fidelities (Table 6, Eq. 23).
  double readout_fidelity0 = 0.95;
  double readout_fidelity1 = 0.995;
  sim::SimTime readout_duration = sim::duration::microseconds(3.7);

  // Move communication -> memory qubit: 2 E-C controlled-sqrt(X) gates
  // plus local gates, 1040 us total (Appendix D.3.3).
  sim::SimTime move_to_memory_duration = sim::duration::microseconds(1040);

  // Carbon re-initialisation cadence while attempting entanglement
  // (Appendix D.3.3): 330 us of work every 3500 us.
  sim::SimTime carbon_refresh_duration = sim::duration::microseconds(330);
  sim::SimTime carbon_refresh_interval = sim::duration::microseconds(3500);

  // Nuclear-spin dephasing per entanglement attempt (Eq. 25), parameters
  // of carbon C1 in [58]: coupling 2*pi*377 kHz, decay constant 82 ns.
  double carbon_coupling_rad_per_s = 2.0 * 3.14159265358979323846 * 377e3;
  double carbon_tau_d_s = 82e-9;

  int num_memory_qubits = 1;
};

/// Parameters of the optical chain and heralding station (Appendix
/// D.4-D.5), per arm where they can differ.
struct HeraldParams {
  // Two-photon emission probability given >= 1 photon (D.4.3); modelled
  // as electron dephasing with p = p_double / 2.
  double p_double_excitation = 0.04;

  // Phase uncertainty of the A->H->B paths (D.4.2): the electron-electron
  // phase std-dev is 14.3 degrees; per arm it is 14.3/sqrt(2) degrees.
  double phase_sigma_rad_per_arm = (14.3 / std::sqrt(2.0)) * kPi / 180.0;

  // Emission/collection (D.4.4-D.4.5).
  double p_zero_phonon = 0.03;       // 0.46 with cavity
  double p_collection = 0.019;       // x0.3 with frequency conversion
  double emission_tau_ns = 12.0;     // 6.48 with cavity
  double detection_window_ns = 25.0;

  // Transmission (D.4.6).
  double fiber_length_a_km = 0.001;  // Lab: ~1 m
  double fiber_length_b_km = 0.001;
  double fiber_loss_db_per_km = 5.0;  // 0.5 with frequency conversion

  // Station (D.4.7-D.4.8).
  double visibility = 0.9;            // |mu|^2, photon indistinguishability
  double detector_efficiency = 0.8;
  double dark_count_rate_hz = 20.0;

  static constexpr double kPi = 3.14159265358979323846;
};

/// End-to-end scenario: devices, optics, timing, classical links.
struct ScenarioParams {
  std::string name;
  NvParams nv;
  HeraldParams herald;

  /// MHP cycle (Section 4.4): 10.12 us in both scenarios.
  sim::SimTime mhp_cycle = sim::duration::microseconds(10.12);

  /// One-way classical+photon propagation delay node <-> station.
  sim::SimTime delay_a_to_station = sim::duration::nanoseconds(5);
  sim::SimTime delay_b_to_station = sim::duration::nanoseconds(5);

  /// Classical frame loss probability on all control links (D.6.1);
  /// the realistic value is < 4e-8, the robustness study inflates it.
  double classical_loss_prob = 0.0;

  /// The "Lab" scenario of Section 4.4 (2 m, no cavity, no conversion).
  static ScenarioParams lab();

  /// The "QL2020" scenario (10 km + 15 km to the station, optical
  /// cavities, frequency conversion to 1588 nm).
  static ScenarioParams ql2020();

  sim::SimTime delay_a_to_b() const {
    return delay_a_to_station + delay_b_to_station;
  }
};

}  // namespace qlink::hw
