#pragma once

#include <map>
#include <vector>

#include "hw/nv_params.hpp"
#include "quantum/density_matrix.hpp"

/// \file herald_model.hpp
/// Analytic single-click entanglement model (Appendix D.4-D.5).
///
/// One heralded attempt evolves a 4-qubit system
///   (electron A, photon A, electron B, photon B)
/// through: spin-photon emission with bright-state population alpha,
/// two-photon-emission dephasing, optical phase-uncertainty dephasing,
/// the loss chain (zero-phonon line, collection, fiber, detection window,
/// detector efficiency) as amplitude damping, the beam-splitter POVM with
/// photon distinguishability mu (Eq. 90-97), and detector dark counts.
///
/// The outcome distribution and the heralded electron-electron states
/// depend only on (alpha_A, alpha_B) for fixed hardware, not on history,
/// so results are cached: per attempt the simulation only samples an
/// outcome and, on success, installs a precomputed two-qubit state.
/// This is the decomposition that makes protocol-scale simulation
/// tractable (DESIGN.md, substitution 5).

namespace qlink::hw {

/// Heralding outcome as reported by the midpoint (Fig. 3).
enum class HeraldOutcome {
  kFail = 0,      // no click or both detectors clicked
  kPsiPlus = 1,   // left detector clicked
  kPsiMinus = 2,  // right detector clicked
};

/// Cached results of one (alpha_A, alpha_B) configuration.
struct HeraldDistribution {
  double p_fail = 1.0;
  double p_psi_plus = 0.0;
  double p_psi_minus = 0.0;

  /// Electron-electron states conditioned on each success outcome
  /// (qubit 0 = node A's electron, qubit 1 = node B's).
  quantum::DensityMatrix post_psi_plus{2};
  quantum::DensityMatrix post_psi_minus{2};

  /// Fidelities of the above to |Psi+> / |Psi->.
  double fidelity_plus = 0.0;
  double fidelity_minus = 0.0;

  double p_success() const { return p_psi_plus + p_psi_minus; }
};

class HeraldModel {
 public:
  explicit HeraldModel(HeraldParams params);

  /// Full computation for one alpha pair (uncached).
  HeraldDistribution compute(double alpha_a, double alpha_b) const;

  /// Cached lookup (alpha values quantised to 1e-6).
  const HeraldDistribution& distribution(double alpha_a,
                                         double alpha_b) const;

  /// Probability that one photon emitted at the given node reaches a
  /// detector and registers (the "p_det" of Section 4.4), combining the
  /// full loss chain for that arm.
  double arm_detection_probability(bool node_a) const;

  /// Dark-click probability per detector per window (Eq. 34).
  double dark_click_probability() const;

  const HeraldParams& params() const { return params_; }

 private:
  double arm_loss(double fiber_km) const;

  HeraldParams params_;
  mutable std::map<std::pair<long, long>, HeraldDistribution> cache_;
};

}  // namespace qlink::hw
