#include "hw/herald_model.hpp"

#include <cmath>
#include <stdexcept>

#include "quantum/bell.hpp"
#include "quantum/channels.hpp"
#include "quantum/gates.hpp"
#include "quantum/matrix.hpp"

namespace qlink::hw {

using quantum::Complex;
using quantum::DensityMatrix;
using quantum::Matrix;

namespace {

/// Spin-photon state after a trigger at one node (Appendix D.4):
///   sqrt(alpha)|0>_C|1>_P + sqrt(1-alpha)|1>_C|0>_P
/// with |0>_C the bright state.
DensityMatrix spin_photon_state(double alpha) {
  std::vector<Complex> amp(4, Complex{0.0, 0.0});
  amp[0b01] = std::sqrt(alpha);        // |C=0, P=1>
  amp[0b10] = std::sqrt(1.0 - alpha);  // |C=1, P=0>
  return DensityMatrix::from_pure(amp);
}

/// Beam-splitter measurement Kraus operators for non-photon-counting
/// detectors, Eq. 94-97, in the (P_A, P_B) basis |00>,|01>,|10>,|11>.
/// (The paper orders the middle rows |10>,|01>; the operators are
/// symmetric under that swap so the matrices are identical.)
struct StationKraus {
  Matrix e00, e10, e01, e11;
};

StationKraus station_kraus(double mu) {
  const double ap = std::sqrt(1.0 + mu);
  const double am = std::sqrt(1.0 - mu);
  const double s2 = std::sqrt(2.0);
  const double diag = (ap + am) / s2 / 2.0;
  const double off = (ap - am) / s2 / 2.0;
  const double corner = std::sqrt(1.0 + mu * mu) / 2.0;
  const double e11v = std::sqrt(1.0 - mu * mu) / s2;

  StationKraus k;
  k.e00 = Matrix{{1, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}};
  k.e10 = Matrix{{0, 0, 0, 0},
                 {0, diag, off, 0},
                 {0, off, diag, 0},
                 {0, 0, 0, corner}};
  k.e01 = Matrix{{0, 0, 0, 0},
                 {0, diag, -off, 0},
                 {0, -off, diag, 0},
                 {0, 0, 0, corner}};
  k.e11 = Matrix{{0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, 0}, {0, 0, 0, e11v}};
  return k;
}

}  // namespace

HeraldModel::HeraldModel(HeraldParams params) : params_(params) {
  if (params_.visibility < 0.0 || params_.visibility > 1.0) {
    throw std::invalid_argument("HeraldModel: visibility out of [0,1]");
  }
}

double HeraldModel::arm_loss(double fiber_km) const {
  const HeraldParams& p = params_;
  // Detection-window truncation of the coherent emission (Eq. 30).
  const double window_damping =
      std::exp(-p.detection_window_ns / p.emission_tau_ns);
  // Collection losses (Eq. 31).
  const double collection_keep = p.p_zero_phonon * p.p_collection;
  // Fiber transmission (Eq. 33).
  const double fiber_keep =
      std::pow(10.0, -fiber_km * p.fiber_loss_db_per_km / 10.0);
  const double keep = (1.0 - window_damping) * collection_keep * fiber_keep *
                      p.detector_efficiency;
  return 1.0 - keep;
}

double HeraldModel::arm_detection_probability(bool node_a) const {
  const double km =
      node_a ? params_.fiber_length_a_km : params_.fiber_length_b_km;
  return 1.0 - arm_loss(km);
}

double HeraldModel::dark_click_probability() const {
  return 1.0 - std::exp(-params_.detection_window_ns * 1e-9 *
                        params_.dark_count_rate_hz);
}

HeraldDistribution HeraldModel::compute(double alpha_a,
                                        double alpha_b) const {
  if (alpha_a <= 0.0 || alpha_a >= 1.0 || alpha_b <= 0.0 || alpha_b >= 1.0) {
    throw std::invalid_argument("HeraldModel::compute: alpha out of (0,1)");
  }
  const HeraldParams& p = params_;

  // Qubit order: 0 = electron A, 1 = photon A, 2 = electron B, 3 = photon B.
  DensityMatrix rho =
      spin_photon_state(alpha_a).tensor(spin_photon_state(alpha_b));
  const int kElectronA[] = {0};
  const int kPhotonA[] = {1};
  const int kElectronB[] = {2};
  const int kPhotonB[] = {3};
  const int kPhotons[] = {1, 3};

  // Two-photon emission: effective electron dephasing (D.4.3).
  {
    const auto deph =
        quantum::channels::dephasing(p.p_double_excitation / 2.0);
    rho.apply_kraus(deph, kElectronA);
    rho.apply_kraus(deph, kElectronB);
  }

  // Optical phase uncertainty per arm (Eq. 28-29).
  {
    const double pd = quantum::channels::phase_uncertainty_dephasing(
        p.phase_sigma_rad_per_arm);
    const auto deph = quantum::channels::dephasing(pd);
    rho.apply_kraus(deph, kPhotonA);
    rho.apply_kraus(deph, kPhotonB);
  }

  // Loss chain per arm as amplitude damping on the photonic qubits.
  rho.apply_kraus(quantum::channels::amplitude_damping(
                      arm_loss(p.fiber_length_a_km)),
                  kPhotonA);
  rho.apply_kraus(quantum::channels::amplitude_damping(
                      arm_loss(p.fiber_length_b_km)),
                  kPhotonB);

  // Beam-splitter measurement (Eq. 90-97).
  const double mu = std::sqrt(p.visibility);
  const StationKraus kraus = station_kraus(mu);

  struct Branch {
    double prob;
    DensityMatrix post{2};
  };
  auto project = [&](const Matrix& op) {
    Branch b{0.0, DensityMatrix(2)};
    DensityMatrix work = rho;
    b.prob = work.apply_and_renormalize(op, kPhotons);
    if (b.prob > 0.0) b.post = work.partial_trace(kPhotons);
    return b;
  };
  const Branch b00 = project(kraus.e00);
  const Branch b10 = project(kraus.e10);
  const Branch b01 = project(kraus.e01);
  const Branch b11 = project(kraus.e11);

  // Dark counts flip quiet detectors with probability p_dark (D.4.8).
  // Detector efficiency is already folded into the loss chain above.
  const double pd = dark_click_probability();

  HeraldDistribution out;

  // Final "left only" (|Psi+> herald): ideal left-only with no dark on
  // the right, or ideal none with a dark count on the left only.
  const double w_left_real = b10.prob * (1.0 - pd);
  const double w_left_dark = b00.prob * pd * (1.0 - pd);
  out.p_psi_plus = w_left_real + w_left_dark;
  if (out.p_psi_plus > 0.0) {
    Matrix mix = b10.post.matrix() * Complex{w_left_real, 0.0};
    mix += b00.post.matrix() * Complex{w_left_dark, 0.0};
    out.post_psi_plus = DensityMatrix::from_matrix(std::move(mix));
    out.post_psi_plus.renormalize();
  }

  const double w_right_real = b01.prob * (1.0 - pd);
  const double w_right_dark = b00.prob * pd * (1.0 - pd);
  out.p_psi_minus = w_right_real + w_right_dark;
  if (out.p_psi_minus > 0.0) {
    Matrix mix = b01.post.matrix() * Complex{w_right_real, 0.0};
    mix += b00.post.matrix() * Complex{w_right_dark, 0.0};
    out.post_psi_minus = DensityMatrix::from_matrix(std::move(mix));
    out.post_psi_minus.renormalize();
  }

  out.p_fail = 1.0 - out.p_psi_plus - out.p_psi_minus;
  (void)b11;  // both-click: failure; accounted for in p_fail.

  out.fidelity_plus =
      quantum::bell::fidelity(out.post_psi_plus,
                              quantum::bell::BellState::kPsiPlus);
  out.fidelity_minus =
      quantum::bell::fidelity(out.post_psi_minus,
                              quantum::bell::BellState::kPsiMinus);
  return out;
}

const HeraldDistribution& HeraldModel::distribution(double alpha_a,
                                                    double alpha_b) const {
  const auto key = std::make_pair(std::lround(alpha_a * 1e6),
                                  std::lround(alpha_b * 1e6));
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    it = cache_.emplace(key, compute(alpha_a, alpha_b)).first;
  }
  return it->second;
}

}  // namespace qlink::hw
