#include "hw/nv_device.hpp"

#include <algorithm>
#include <stdexcept>

#include "quantum/channels.hpp"

namespace qlink::hw {

using quantum::QubitId;
namespace channels = quantum::channels;
namespace gates = quantum::gates;

NvDevice::NvDevice(sim::Simulator& simulator, std::string name,
                   const NvParams& params,
                   quantum::QuantumRegistry& registry)
    : Entity(simulator, std::move(name)),
      params_(params),
      registry_(registry) {
  comm_ = registry_.create();
  meta_.push_back(QubitMeta{comm_, true, now(), false});
  for (int i = 0; i < params_.num_memory_qubits; ++i) {
    const QubitId q = registry_.create();
    memory_.push_back(q);
    meta_.push_back(QubitMeta{q, false, now(), false});
  }
}

NvDevice::~NvDevice() {
  if (registry_.exists(comm_)) registry_.discard(comm_);
  for (QubitId q : memory_) {
    if (registry_.exists(q)) registry_.discard(q);
  }
}

NvDevice::QubitMeta& NvDevice::meta(QubitId q) {
  for (auto& m : meta_) {
    if (m.id == q) return m;
  }
  throw std::invalid_argument("NvDevice: qubit not owned by device");
}

const NvDevice::QubitMeta& NvDevice::meta(QubitId q) const {
  for (const auto& m : meta_) {
    if (m.id == q) return m;
  }
  throw std::invalid_argument("NvDevice: qubit not owned by device");
}

void NvDevice::apply_decay(QubitMeta& m) {
  const sim::SimTime elapsed = now() - m.last_update;
  // last_update may sit in the future when an operation's noise budget
  // already covers its duration (move_comm_to_memory); skip until then.
  if (elapsed <= 0) return;
  m.last_update = now();
  const double t1 = m.is_electron ? params_.electron_t1_ns
                                  : params_.carbon_t1_ns;
  const double t2 = m.is_electron ? params_.electron_t2_ns
                                  : params_.carbon_t2_ns;
  // Structured registry op: no Kraus-set construction on this path —
  // it runs once per qubit touch, millions of times per simulated run.
  registry_.decay(m.id, static_cast<double>(elapsed), t1, t2);
}

void NvDevice::touch(QubitId q) { apply_decay(meta(q)); }

void NvDevice::touch_all() {
  for (auto& m : meta_) apply_decay(m);
}

void NvDevice::mark_fresh(QubitId q) { meta(q).last_update = now(); }

void NvDevice::set_live(QubitId q, bool live) { meta(q).live = live; }

bool NvDevice::is_live(QubitId q) const { return meta(q).live; }

void NvDevice::occupy_for(sim::SimTime duration) {
  busy_until_ = std::max(busy_until_, now() + duration);
}

void NvDevice::initialize_electron() {
  QubitMeta& m = meta(comm_);
  registry_.reset(comm_);
  m.last_update = now();
  m.live = false;
  registry_.depolarize(comm_, params_.electron_init.fidelity);
  occupy_for(params_.electron_init.duration);
}

void NvDevice::initialize_carbon(int i) {
  const QubitId q = memory_.at(i);
  QubitMeta& m = meta(q);
  registry_.reset(q);
  m.last_update = now();
  m.live = false;
  registry_.depolarize(q, params_.carbon_init.fidelity);
  occupy_for(params_.carbon_init.duration);
}

void NvDevice::move_comm_to_memory(int i) {
  const QubitId carbon = memory_.at(i);
  touch(comm_);
  touch(carbon);

  // Two E-C controlled-sqrt(X) gates plus local gates realise the swap
  // (Appendix D.3.3); we apply the net unitary plus the accumulated gate
  // dephasing on the carbon.
  const QubitId pair[] = {comm_, carbon};
  registry_.apply_unitary(gates::swap(), pair);
  const double f = params_.ec_controlled_sqrt_x.fidelity;
  const double p_err = 2.0 * (1.0 - f);  // two E-C gates
  registry_.dephase(carbon, p_err);

  meta(carbon).live = meta(comm_).live;
  meta(comm_).live = false;
  occupy_for(params_.move_to_memory_duration);
  // The E-C gate fidelities of Table 6 are measured over the gate
  // duration and therefore already include the decoherence picked up
  // while the sequence runs (the pulse train dynamically decouples the
  // electron, Appendix D.2.2). Restart the decay clocks at the end of
  // the move so that time is not double-charged.
  meta(carbon).last_update = now() + params_.move_to_memory_duration;
  meta(comm_).last_update = now() + params_.move_to_memory_duration;
}

int NvDevice::noisy_readout(int true_outcome) {
  // Asymmetric readout of Eq. 23: reported statistics of the POVM
  // {M0, M1} given a projective pre-measurement.
  const double p_correct = true_outcome == 0 ? params_.readout_fidelity0
                                             : params_.readout_fidelity1;
  // The registry owns the deterministic RNG used for all quantum
  // sampling; reuse it so one seed reproduces a whole run.
  return registry_.random().bernoulli(p_correct) ? true_outcome
                                                 : 1 - true_outcome;
}

int NvDevice::measure_comm(gates::Basis basis) {
  touch(comm_);
  const int z = registry_.measure(comm_, basis);
  meta(comm_).live = false;
  meta(comm_).last_update = now();
  occupy_for(params_.readout_duration);
  return noisy_readout(z);
}

int NvDevice::measure_memory(int i, gates::Basis basis) {
  const QubitId carbon = memory_.at(i);
  touch(carbon);
  // Appendix D.3.4: init electron, effective CNOT (one E-C gate plus
  // locals), then electron readout. We read the carbon directly but
  // charge the CNOT's dephasing and the full duration.
  registry_.dephase(carbon, 1.0 - params_.ec_controlled_sqrt_x.fidelity);
  const int z = registry_.measure(carbon, basis);
  meta(carbon).live = false;
  meta(carbon).last_update = now();
  occupy_for(params_.electron_init.duration +
             params_.ec_controlled_sqrt_x.duration +
             params_.readout_duration);
  return noisy_readout(z);
}

void NvDevice::apply_electron_gate(const quantum::Matrix& u) {
  touch(comm_);
  const QubitId ids[] = {comm_};
  registry_.apply_unitary(u, ids);
  occupy_for(params_.electron_single.duration);
}

void NvDevice::apply_attempt_dephasing(double alpha) {
  const double pd = channels::carbon_dephasing_probability(
      alpha, params_.carbon_coupling_rad_per_s, params_.carbon_tau_d_s);
  for (QubitId q : memory_) {
    if (meta(q).live) registry_.dephase(q, pd);
  }
}

}  // namespace qlink::hw
