// Entanglement swapping on link-layer pairs (the NL use case of
// Section 3.3 / Figure 1b).
//
// The network layer builds long-distance entanglement by swapping two
// link pairs at a shared node. With one link we demonstrate the exact
// same mechanics: produce two pairs A<->B (one stored in B's carbon, one
// held in B's communication qubit), Bell-measure B's two halves, apply
// the conditional corrections on A's side — A's two qubits end up
// entangled with each other even though they never interacted.

#include <cstdio>
#include <vector>

#include "core/network.hpp"
#include "quantum/bell.hpp"

using namespace qlink;
using namespace qlink::core;
namespace gates = qlink::quantum::gates;
namespace bell = qlink::quantum::bell;

int main() {
  LinkConfig config;
  config.scenario = hw::ScenarioParams::lab();
  config.seed = 23;
  // Holding one pair while generating the next takes ~tens of ms — far
  // beyond the bare carbon T2* of 3.5 ms, and the per-attempt dephasing
  // of Eq. 25 would finish it off. Model the decoherence-protected
  // memory of [82] (dynamical decoupling): longer T2 and a 10x weaker
  // effective coupling to the electron. Without these upgrades a single
  // NV memory qubit cannot support entanglement swapping — exactly the
  // "noise due to generation" constraint Section 4.5 discusses.
  config.scenario.nv.carbon_t2_ns = 0.5e9;  // 500 ms decoupled
  config.scenario.nv.carbon_coupling_rad_per_s /= 10.0;
  Link link(config);

  std::vector<OkMessage> oks_a;
  std::vector<OkMessage> oks_b;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) { oks_a.push_back(ok); });
  link.egp_b().set_ok_handler([&](const OkMessage& ok) { oks_b.push_back(ok); });
  link.start();

  // Pair 1: stored in the carbons (NL priority, as the network layer
  // would request it).
  CreateRequest stored;
  stored.type = RequestType::kCreateKeep;
  stored.num_pairs = 1;
  stored.min_fidelity = 0.65;
  stored.priority = Priority::kNetworkLayer;
  stored.consecutive = true;
  stored.store_in_memory = true;
  link.egp_a().create(stored);
  for (int i = 0; i < 200000 && oks_b.size() < 1; ++i) {
    link.run_for(sim::duration::microseconds(100));
  }
  if (oks_b.size() < 1) {
    std::printf("pair 1 not delivered\n");
    return 1;
  }
  std::printf("pair 1 delivered (stored in carbons), goodness %.3f\n",
              oks_a[0].goodness);

  // Pair 2: kept in the communication qubits (no move), so B now holds
  // halves of two distinct pairs — the repeater configuration.
  CreateRequest comm;
  comm.type = RequestType::kCreateKeep;
  comm.num_pairs = 1;
  comm.min_fidelity = 0.65;
  comm.priority = Priority::kNetworkLayer;
  comm.consecutive = true;
  comm.store_in_memory = false;
  link.egp_a().create(comm);
  for (int i = 0; i < 200000 && oks_b.size() < 2; ++i) {
    link.run_for(sim::duration::microseconds(100));
  }
  if (oks_b.size() < 2) {
    std::printf("pair 2 not delivered\n");
    return 1;
  }
  std::printf("pair 2 delivered (held in comm qubits), goodness %.3f\n",
              oks_a[1].goodness);

  auto& reg = link.registry();
  const quantum::QubitId a1 = oks_a[0].qubit;  // A carbon  <-> B carbon
  const quantum::QubitId b1 = oks_b[0].qubit;
  const quantum::QubitId a2 = oks_a[1].qubit;  // A comm    <-> B comm
  const quantum::QubitId b2 = oks_b[1].qubit;
  link.device_a().touch(a1);
  link.device_a().touch(a2);
  link.device_b().touch(b1);
  link.device_b().touch(b2);

  // Entanglement swap at B: Bell measurement across its two halves.
  const quantum::QubitId bb[] = {b1, b2};
  reg.apply_unitary(gates::cnot(), bb);
  const quantum::QubitId b1s[] = {b1};
  reg.apply_unitary(gates::h(), b1s);
  const int m1 = reg.measure(b1, gates::Basis::kZ);
  const int m2 = reg.measure(b2, gates::Basis::kZ);
  std::printf("swap at B: outcomes (%d, %d) announced classically\n", m1, m2);

  // Corrections on A's second qubit. Delivered pairs are |Psi+>; the
  // swap of two |Psi+> pairs with outcome (m1, m2) leaves A's qubits in
  // X_a2 Z^m1_a2 X^m2_a2 |Phi+>-up-to-locals; fold everything into the
  // standard table (X (x) I corrections for the Psi-vs-Phi offset).
  const quantum::QubitId a2s[] = {a2};
  reg.apply_unitary(gates::x(), a2s);  // Psi+ -> Phi+ frame for pair 2
  if (m2 == 1) reg.apply_unitary(gates::x(), a2s);
  if (m1 == 1) reg.apply_unitary(gates::z(), a2s);

  // A's two local qubits (never interacted!) are now entangled. The
  // target frame: pair1 was |Psi+>, so the joint state is (X on a1)
  // applied to |Phi+> -- i.e. |Psi+> again.
  const quantum::QubitId aa[] = {a1, a2};
  const double f_psi = reg.fidelity(
      aa, bell::state_vector(bell::BellState::kPsiPlus));
  std::printf("fidelity of A's (carbon, comm) to |Psi+>: %.4f\n", f_psi);
  std::printf("(two imperfect link pairs compose: expect roughly the\n"
              " product of the individual pair fidelities)\n");

  link.egp_a().release_delivered(oks_a[0]);
  link.egp_a().release_delivered(oks_a[1]);
  link.egp_b().release_delivered(oks_b[0]);
  link.egp_b().release_delivered(oks_b[1]);
  return f_psi > 0.4 ? 0 : 1;
}
