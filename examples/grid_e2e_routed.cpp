// End-to-end entanglement across a 3x3 grid through the routing layer.
//
// Where examples/chain_e2e_nl.cpp drives a fixed chain, this example
// shows the full general-graph stack: routing::Graph models the grid,
// routing::Router annotates every edge from its link's FEU, selects
// candidate paths under the fidelity cost model, and admits concurrent
// requests only onto edges with free reservation capacity. Three
// requests run concurrently on edge-disjoint paths; a fourth wants an
// already-reserved corridor, queues behind the reservation table, and
// is admitted automatically when capacity releases.
//
// Registered as a ctest acceptance check once per quantum-state
// backend: it exits nonzero unless every request delivers a pair that
// beats the entanglement witness (fidelity 0.5).

#include <cstdio>
#include <vector>

#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "qstate/backend_registry.hpp"
#include "routing/router.hpp"

using namespace qlink;
using namespace qlink::netlayer;

int main(int argc, char** argv) {
  qstate::BackendKind backend = qstate::BackendKind::kDense;
  if (argc > 1) {
    const auto parsed = qstate::parse_backend_kind(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "usage: %s [dense|bell]\n", argv[0]);
      return 2;
    }
    backend = *parsed;
  }

  // 3x3 grid: 9 nodes, 12 links.
  //   0 - 1 - 2
  //   |   |   |
  //   3 - 4 - 5
  //   |   |   |
  //   6 - 7 - 8
  routing::Graph grid = routing::Graph::grid(3, 3);

  NetworkConfig config =
      routing::make_network_config(grid, core::LinkConfig{}, /*seed=*/42);
  config.link.backend = backend;
  config.link.pauli_twirl_installs =
      backend == qstate::BackendKind::kBellDiagonal;
  config.link.scenario = hw::ScenarioParams::lab();
  // Decoherence-protected carbon memory (dynamical decoupling, [82]):
  // pairs wait for the slowest hop, as in chain_e2e_nl.cpp — but here
  // they additionally wait *behind other requests' corridors*, hundreds
  // of ms, so the grid assumes a deeper decoupling sequence (5 s).
  config.link.scenario.nv.carbon_t2_ns = 5e9;
  config.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;

  QuantumNetwork net(config);
  metrics::Collector collector;
  SwapService swap(net, &collector);

  routing::RouterConfig rc;
  rc.cost = routing::CostModel::kFidelity;
  // Admit only each pair's cheapest corridor: at link floor 0.8 the
  // witness (0.5) survives one swap but not a 4-hop detour (Werner
  // composition 0.736^4 ~ 0.47), so contention must queue rather than
  // take a longer route. Candidate diversity under contention is
  // bench_grid_routing's story (and test_netlayer's).
  rc.k_candidates = 1;
  routing::Router router(grid, net, swap, rc, &collector);
  // Operate every link at the best feasible CREATE floor of the menu
  // (the FEU decides; on this homogeneous grid all land at 0.8).
  const double floor_menu[] = {0.8, 0.7, 0.6};
  router.annotate_from_network(floor_menu);

  std::printf("grid: %zu nodes, %zu links, %s state backend\n",
              net.num_nodes(), net.num_links(),
              net.registry().backend().name());
  std::printf("edge 0 annotated: floor %.2f, est fidelity %.3f, "
              "%.0f ms/pair\n",
              router.graph().params(0).link_floor,
              router.graph().params(0).fidelity,
              router.graph().params(0).pair_time_s * 1e3);

  int delivered = 0;
  double min_fidelity = 1.0;
  router.set_deliver_handler([&](const E2eOk& ok) {
    ++delivered;
    if (ok.fidelity < min_fidelity) min_fidelity = ok.fidelity;
    std::printf("request %u: nodes %u<->%u delivered after %d swap(s), "
                "fidelity %.4f, latency %.1f ms\n",
                ok.request_id, ok.src, ok.dst, ok.swaps, ok.fidelity,
                sim::to_seconds(ok.deliver_time - ok.submit_time) * 1e3);
    swap.release(ok);
  });

  // Three edge-disjoint corridors (top row, bottom row, left column)
  // run concurrently; the repeat of the top corridor must wait.
  std::vector<E2eRequest> requests(4);
  requests[0].src = 0, requests[0].dst = 2;
  requests[1].src = 6, requests[1].dst = 8;
  requests[2].src = 0, requests[2].dst = 6;
  requests[3].src = 2, requests[3].dst = 0;

  net.start();
  for (const E2eRequest& req : requests) router.submit(req);

  const auto& stats = router.stats();
  std::printf("submitted %llu: admitted %llu concurrently, blocked %llu "
              "(queued behind reservations)\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.admitted),
              static_cast<unsigned long long>(stats.blocked));

  for (int i = 0; i < 1600000 && delivered < 4; ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  if (delivered < 4) {
    std::printf("only %d of 4 requests delivered\n", delivered);
    return 1;
  }

  std::printf("max concurrent reservations %zu, blocked retries "
              "admitted: %llu requests completed in total\n",
              router.reservations().max_active(),
              static_cast<unsigned long long>(stats.completed));

  // Fidelity > 0.5 is an entanglement witness: no separable state of
  // the two end qubits exceeds it.
  return min_fidelity > 0.5 && stats.blocked >= 1 ? 0 : 1;
}
