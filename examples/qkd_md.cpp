// QKD over the link layer (the MD use case of Section 3.3).
//
// An E91-flavoured key exchange: both nodes request measure-directly
// pairs; the pre-agreed random basis string plays the role of basis
// reconciliation (no sifting loss in this simplified variant); a sample
// of rounds is sacrificed to estimate the QBER, the rest become raw key
// after flipping for the known (anti-)correlations.
//
// Run twice: with today's Lab optics (QBER too high for key — the
// quantitative point Section 4.2 makes about fidelity as a service
// parameter) and with projected upgraded optics where the same protocol
// produces secret key.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/network.hpp"
#include "quantum/bell.hpp"

using namespace qlink;
using namespace qlink::core;

namespace {

struct KeyRound {
  int outcome = 0;
  quantum::gates::Basis basis = quantum::gates::Basis::kZ;
  int heralded = 1;
  std::uint32_t seq = 0;
};

double binary_entropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1 - p) * std::log2(1 - p);
}

void run_qkd(const char* label, const hw::ScenarioParams& scenario,
             double fmin, std::uint16_t pairs) {
  std::printf("\n--- %s (F_min = %.2f) ---\n", label, fmin);
  LinkConfig config;
  config.scenario = scenario;
  config.seed = 2024;
  Link link(config);

  std::vector<KeyRound> alice;
  std::vector<KeyRound> bob;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) {
    alice.push_back({ok.outcome, ok.basis, ok.heralded_state,
                     ok.ent_id.seq_mhp});
  });
  link.egp_b().set_ok_handler([&](const OkMessage& ok) {
    bob.push_back({ok.outcome, ok.basis, ok.heralded_state,
                   ok.ent_id.seq_mhp});
  });
  link.egp_a().set_err_handler([&](const ErrMessage& err) {
    if (err.error == EgpError::kUnsupported) {
      std::printf("link layer says UNSUPP: F_min not achievable here\n");
    }
  });
  link.start();

  CreateRequest request;
  request.type = RequestType::kCreateMeasure;
  request.num_pairs = pairs;
  request.min_fidelity = fmin;
  request.priority = Priority::kMeasureDirectly;
  request.consecutive = true;
  request.purpose_id = 7;  // "the QKD app" port
  link.egp_a().create(request);

  for (int i = 0; i < 1200 && alice.size() < pairs; ++i) {
    link.run_for(sim::duration::milliseconds(100));
  }
  std::printf("delivered %zu/%u rounds in %.1f simulated seconds\n",
              alice.size(), pairs,
              sim::to_seconds(link.simulator().now()));
  if (alice.empty()) return;

  std::size_t matched = 0;
  std::size_t test_errors = 0;
  std::size_t test_bits = 0;
  std::vector<int> key_alice;
  std::vector<int> key_bob;
  std::size_t bi = 0;
  for (const KeyRound& a : alice) {
    while (bi < bob.size() && bob[bi].seq < a.seq) ++bi;
    if (bi >= bob.size() || bob[bi].seq != a.seq) continue;
    const KeyRound& b = bob[bi];
    ++matched;
    const auto state = a.heralded == 1 ? quantum::bell::BellState::kPsiPlus
                                       : quantum::bell::BellState::kPsiMinus;
    const bool equal_ideal =
        quantum::bell::ideal_outcomes_equal(state, a.basis);
    const int bob_bit = equal_ideal ? b.outcome : 1 - b.outcome;
    if (matched % 4 == 0) {
      ++test_bits;
      if (a.outcome != bob_bit) ++test_errors;
    } else {
      key_alice.push_back(a.outcome);
      key_bob.push_back(bob_bit);
    }
  }

  const double qber = test_bits == 0 ? 0.0
                                     : static_cast<double>(test_errors) /
                                           static_cast<double>(test_bits);
  const double secret_fraction =
      std::max(0.0, 1.0 - 2.0 * binary_entropy(qber));
  std::printf("matched rounds            : %zu\n", matched);
  std::printf("estimated QBER (test bits): %.3f  (key needs < 0.11)\n",
              qber);
  std::printf("raw key length            : %zu bits\n", key_alice.size());
  std::printf("asymptotic secret fraction: %.3f -> ~%.0f secret bits\n",
              secret_fraction,
              secret_fraction * static_cast<double>(key_alice.size()));
}

}  // namespace

int main() {
  // Today's Lab optics: the link delivers F ~ 0.7-0.8; QBER lands well
  // above the 11% BB84/E91 threshold, so no key — higher throughput
  // could not have fixed this, only higher fidelity can (Section 4.2).
  run_qkd("Lab optics (today)", hw::ScenarioParams::lab(), 0.72, 300);

  // Projected upgrade: better photon indistinguishability, less
  // two-photon emission, tighter phase stabilisation (Section 4.4 cites
  // cavities and conversion as the path). Same protocol, same code.
  hw::ScenarioParams upgraded = hw::ScenarioParams::lab();
  upgraded.name = "Lab-upgraded";
  upgraded.herald.visibility = 0.99;
  upgraded.herald.p_double_excitation = 0.005;
  upgraded.herald.phase_sigma_rad_per_arm /= 4.0;
  run_qkd("upgraded optics (projected)", upgraded, 0.9, 300);
  return 0;
}
