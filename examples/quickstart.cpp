// Quickstart: bring up a simulated two-node quantum link (Lab scenario),
// submit one measure-directly and one create-and-keep request through the
// EGP's public API, and print what comes back.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "core/network.hpp"

using namespace qlink;
using namespace qlink::core;

int main() {
  // 1. Assemble the link: two NV nodes, the heralding station, classical
  //    and quantum fiber, MHP + EGP at both ends.
  LinkConfig config;
  config.scenario = hw::ScenarioParams::lab();
  config.seed = 42;
  Link link(config);

  // 2. Subscribe to the link-layer service interface (Section 4.1.2).
  link.egp_a().set_ok_handler([&](const OkMessage& ok) {
    if (ok.is_measure_directly) {
      std::printf(
          "[A] OK (M): create=%u pair=%u/%u outcome=%d basis=%s "
          "goodness=%.3f ent=(%u,%u,#%u)\n",
          ok.create_id, ok.pair_index + 1, ok.total_pairs, ok.outcome,
          quantum::gates::basis_name(ok.basis), ok.goodness,
          ok.ent_id.node_a, ok.ent_id.node_b, ok.ent_id.seq_mhp);
    } else {
      std::printf(
          "[A] OK (K): create=%u pair=%u/%u stored in memory slot %d "
          "goodness=%.3f\n",
          ok.create_id, ok.pair_index + 1, ok.total_pairs,
          ok.logical_qubit_id, ok.goodness);
      link.egp_a().release_delivered(ok);  // application consumes the pair
    }
  });
  link.egp_b().set_ok_handler([&](const OkMessage& ok) {
    if (!ok.is_measure_directly) link.egp_b().release_delivered(ok);
  });
  link.egp_a().set_err_handler([](const ErrMessage& err) {
    std::printf("[A] ERR: create=%u %s\n", err.create_id,
                egp_error_name(err.error));
  });

  link.start();

  // 3. CREATE: three measure-directly pairs (the MD use case)...
  CreateRequest md;
  md.type = RequestType::kCreateMeasure;
  md.num_pairs = 3;
  md.min_fidelity = 0.6;
  md.priority = Priority::kMeasureDirectly;
  md.consecutive = true;
  std::printf("submitting CREATE (M, 3 pairs, F_min 0.6)...\n");
  link.egp_a().create(md);

  // ...and one stored pair (the CK use case).
  CreateRequest ck;
  ck.type = RequestType::kCreateKeep;
  ck.num_pairs = 1;
  ck.min_fidelity = 0.6;
  ck.priority = Priority::kCreateKeep;
  ck.consecutive = true;
  ck.store_in_memory = true;
  std::printf("submitting CREATE (K, 1 pair, F_min 0.6)...\n");
  link.egp_a().create(ck);

  // 4. And one that cannot be met, to see UNSUPP.
  CreateRequest impossible = md;
  impossible.min_fidelity = 0.99;
  link.egp_a().create(impossible);

  // 5. Run the world.
  link.run_for(sim::duration::seconds(3));

  const auto& stats = link.egp_a().stats();
  std::printf(
      "\ndone: %llu attempts, %llu heralded successes, %llu OKs, "
      "%llu errors\n",
      static_cast<unsigned long long>(stats.attempts),
      static_cast<unsigned long long>(stats.successes),
      static_cast<unsigned long long>(stats.oks),
      static_cast<unsigned long long>(stats.errors));
  return 0;
}
