// End-to-end entanglement over a 3-hop repeater chain, built through
// the network layer (Section 3.3 / Figure 1b — the NL use case at the
// scale the paper's Figure 1b sketches).
//
// Where examples/repeater_swap_nl.cpp hand-wires one swap on a single
// link, here netlayer::QuantumNetwork instantiates four nodes joined
// by three links on one simulator clock, and netlayer::SwapService
// does everything the network layer must do: fan the end-to-end
// request out into per-hop CREATEs, match link-layer OKs, Bell-measure
// at both intermediate nodes, apply the conditional corrections, and
// deliver a pair between nodes 0 and 3 that never interacted.

#include <cstdio>

#include "netlayer/swap_service.hpp"
#include "netlayer/topology.hpp"
#include "qstate/backend_registry.hpp"

using namespace qlink;
using namespace qlink::netlayer;

int main(int argc, char** argv) {
  // Optional quantum-state backend selection ("dense" default; "bell"
  // runs the same chain on the Bell-diagonal fast path with
  // Pauli-frame installs). Registered twice as a ctest acceptance
  // check, once per backend.
  qstate::BackendKind backend = qstate::BackendKind::kDense;
  if (argc > 1) {
    const auto parsed = qstate::parse_backend_kind(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "usage: %s [dense|bell]\n", argv[0]);
      return 2;
    }
    backend = *parsed;
  }

  NetworkConfig config;
  config.kind = TopologyKind::kChain;
  config.num_links = 3;
  config.seed = 42;
  config.link.backend = backend;
  config.link.pauli_twirl_installs =
      backend == qstate::BackendKind::kBellDiagonal;
  config.link.scenario = hw::ScenarioParams::lab();
  // Pairs wait in carbon memory for the slowest hop — tens of ms, far
  // beyond the bare carbon T2* of 3.5 ms. Model the decoherence-
  // protected memory of [82] (dynamical decoupling), exactly as the
  // single-link swap example does.
  config.link.scenario.nv.carbon_t2_ns = 0.5e9;  // 500 ms decoupled
  config.link.scenario.nv.carbon_coupling_rad_per_s /= 10.0;

  QuantumNetwork net(config);
  metrics::Collector collector;
  SwapService swap(net, &collector);

  std::printf("chain: %zu nodes, %zu links, one shared clock, "
              "%s state backend\n",
              net.num_nodes(), net.num_links(),
              net.registry().backend().name());

  int delivered = 0;
  E2eOk last;
  swap.set_deliver_handler([&](const E2eOk& ok) {
    ++delivered;
    last = ok;
    std::printf("end-to-end pair %u: nodes %u<->%u after %d swaps, "
                "fidelity %.4f, latency %.2f ms\n",
                ok.pair_index, ok.src, ok.dst, ok.swaps, ok.fidelity,
                sim::to_seconds(ok.deliver_time - ok.submit_time) * 1e3);
  });

  E2eRequest request;
  request.src = 0;
  request.dst = 3;
  request.num_pairs = 1;
  request.min_fidelity = 0.5;     // end-to-end target (witness bound)
  request.link_min_fidelity = 0.82;  // per-hop CREATE floor
  net.start();
  swap.request(request);

  for (int i = 0; i < 400000 && delivered < 1; ++i) {
    net.run_for(sim::duration::microseconds(100));
  }
  if (delivered < 1) {
    std::printf("no end-to-end pair delivered\n");
    return 1;
  }

  std::printf("link pairs consumed %llu, swaps %llu\n",
              static_cast<unsigned long long>(
                  swap.stats().link_pairs_consumed),
              static_cast<unsigned long long>(swap.stats().swaps));
  std::printf("(three imperfect link pairs compose: expect roughly the\n"
              " product of the per-link fidelities)\n");
  swap.release(last);

  // Fidelity > 0.5 is an entanglement witness: no separable state of
  // the two end qubits exceeds it.
  return last.fidelity > 0.5 ? 0 : 1;
}
