// Qubit transmission via teleportation (the SQ use case of Section 3.3).
//
// A requests one stored pair through the EGP, prepares a data qubit in an
// arbitrary state, Bell-measures it against its pair half and sends the
// two classical correction bits to B, which recovers the state. The
// example prints the teleported-state fidelity against the prepared one.

#include <cmath>
#include <cstdio>
#include <optional>

#include "core/network.hpp"
#include "quantum/bell.hpp"

using namespace qlink;
using namespace qlink::core;
namespace gates = qlink::quantum::gates;

int main() {
  LinkConfig config;
  config.scenario = hw::ScenarioParams::lab();
  config.seed = 7;
  Link link(config);

  std::optional<OkMessage> ok_a;
  std::optional<OkMessage> ok_b;
  link.egp_a().set_ok_handler([&](const OkMessage& ok) { ok_a = ok; });
  link.egp_b().set_ok_handler([&](const OkMessage& ok) { ok_b = ok; });
  link.start();

  CreateRequest request;
  request.type = RequestType::kCreateKeep;
  request.num_pairs = 1;
  request.min_fidelity = 0.65;
  request.priority = Priority::kCreateKeep;
  request.consecutive = true;
  request.store_in_memory = true;
  link.egp_a().create(request);

  std::printf("requesting one K pair (F_min = %.2f)...\n",
              request.min_fidelity);
  // Act quickly once delivered: stored pairs decay (T2* carbon = 3.5 ms).
  for (int i = 0; i < 200000 && !(ok_a && ok_b); ++i) {
    link.run_for(sim::duration::microseconds(100));
  }
  if (!ok_a || !ok_b) {
    std::printf("no pair delivered in time\n");
    return 1;
  }
  std::printf("pair delivered (ent #%u), goodness %.3f\n",
              ok_a->ent_id.seq_mhp, ok_a->goodness);

  auto& reg = link.registry();
  // A prepares |psi> = cos(t/2)|0> + e^{i phi} sin(t/2)|1>.
  const double theta = 1.1;
  const double phi = 0.6;
  const quantum::QubitId data = reg.create();
  const quantum::QubitId d[] = {data};
  reg.apply_unitary(gates::ry(theta), d);
  reg.apply_unitary(gates::rz(phi), d);
  std::vector<quantum::Complex> psi{
      std::cos(theta / 2) * std::exp(quantum::Complex{0, -phi / 2}),
      std::sin(theta / 2) * std::exp(quantum::Complex{0, phi / 2})};

  // Bell measurement at A across (data, pair half).
  const quantum::QubitId qa = ok_a->qubit;
  const quantum::QubitId qb = ok_b->qubit;
  link.device_a().touch(qa);
  link.device_b().touch(qb);
  const quantum::QubitId pair[] = {data, qa};
  reg.apply_unitary(gates::cnot(), pair);
  reg.apply_unitary(gates::h(), d);
  const int m1 = reg.measure(data, gates::Basis::kZ);
  const int m2 = reg.measure(qa, gates::Basis::kZ);
  std::printf("Bell measurement at A: m1=%d m2=%d (2 classical bits to B)\n",
              m1, m2);

  // B: delivered state is |Psi+> = (I (x) X)|Phi+>; undo the X, then the
  // standard corrections X^m2 Z^m1.
  const quantum::QubitId b[] = {qb};
  reg.apply_unitary(gates::x(), b);
  if (m2 == 1) reg.apply_unitary(gates::x(), b);
  if (m1 == 1) reg.apply_unitary(gates::z(), b);

  const double fidelity = reg.peek(b).fidelity(psi);
  std::printf("teleported-state fidelity at B: %.4f\n", fidelity);
  std::printf("(bounded by the delivered pair quality; 1.0 = perfect)\n");

  reg.discard(data);
  link.egp_a().release_delivered(*ok_a);
  link.egp_b().release_delivered(*ok_b);
  return fidelity > 0.5 ? 0 : 1;
}
